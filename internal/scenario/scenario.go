// Package scenario composes stored profiles into workload mixes: many
// applications arriving over time on a shared resource, instead of one
// profile replayed in isolation.
//
// A Spec is a declarative, versioned JSON description of the mix: named
// profile references resolved through any store.Store (including the remote
// synapsed client), a per-workload arrival process (closed-loop clients,
// open-loop Poisson or constant rate, bursts), concurrency limits, and
// per-workload emulation options. Run compiles the spec onto the batched
// replay engine: every instance's emulation executes through a reusable
// emulator.Run handle, fanned across CPU cores by the same work-stealing
// runner the experiment suite uses, while a discrete-event scheduler plays
// the arrivals out on the virtual timeline, queueing instances when the
// concurrency caps are hit.
//
// With a cluster block the shared resource becomes a finite pool of
// machines (internal/cluster): arriving instances are placed on nodes by
// the spec's policy — queueing when no node fits — replay on the machine
// of the node they land on, and slow down with colocation: the node's core
// occupancy at placement maps onto the replay's background load through
// the contention model.
//
// Everything is deterministic for a fixed (spec, seed): the same scenario
// produces a byte-identical Report at any worker count, which is what makes
// mixes usable for workload-placement studies — change one knob, diff the
// report (the use case of Merzky & Jha, "Bridging the Gap Towards
// Predictable Workload Placement").
package scenario

import (
	"container/heap"
	"context"
	"fmt"
	"hash/fnv"
	"math"
	"runtime"
	"sort"
	"time"

	"synapse/internal/cluster"
	"synapse/internal/core"
	"synapse/internal/emulator"
	"synapse/internal/exp"
	"synapse/internal/machine"
	"synapse/internal/perfcount"
	"synapse/internal/stats"
	"synapse/internal/store"
)

// RunOptions tune scenario execution (not its outcome).
type RunOptions struct {
	// Workers bounds the parallel emulation fan-out; 0 uses GOMAXPROCS,
	// 1 forces serial execution. The report is identical at any value.
	Workers int
}

// Report is the aggregate outcome of one scenario run. All times are
// virtual (the emulations' modeled timeline), so reports are comparable
// across hosts; only wall-clock execution speed varies.
type Report struct {
	// Scenario is the spec's name; Seed the seed the run used.
	Scenario string `json:"scenario"`
	Seed     uint64 `json:"seed"`
	// Makespan is when the last admitted instance completed.
	Makespan Duration `json:"makespan"`
	// Emulations counts completed instances across workloads; Dropped
	// counts instances cut by the scenario duration horizon.
	Emulations int `json:"emulations"`
	Dropped    int `json:"dropped,omitempty"`
	// Replays counts the distinct emulations actually executed:
	// instances of one workload with identical options (no load jitter)
	// share a single deterministic replay. With a cluster, "identical"
	// additionally means same node machine and same contention-derived
	// effective load.
	Replays int `json:"replays"`
	// Throughput is completed emulations per virtual second.
	Throughput float64 `json:"throughput_per_s"`
	// Latency summarizes sojourn time (arrival to completion) across all
	// workloads.
	Latency LatencySummary `json:"latency"`
	// Cluster reports placement decisions and per-node utilization when
	// the spec has a cluster block.
	Cluster *ClusterReport `json:"cluster,omitempty"`
	// Workloads reports per-workload detail, in spec order.
	Workloads []WorkloadReport `json:"workloads"`
}

// ClusterReport is the placement outcome of a clustered scenario.
type ClusterReport struct {
	// Policy is the placement policy the run used.
	Policy string `json:"policy"`
	// Placements counts successful placement decisions; Rejections
	// counts admission probes that found no feasible node (at most one
	// per workload per scheduling instant) — the cluster-full pressure.
	Placements int `json:"placements"`
	Rejections int `json:"rejections,omitempty"`
	// Nodes reports per-node accounting, in cluster order.
	Nodes []NodeReport `json:"nodes"`
}

// NodeReport is one node's slice of the placement outcome.
type NodeReport struct {
	Name    string `json:"name"`
	Machine string `json:"machine"`
	Cores   int    `json:"cores"`
	// Placed counts instances placed on this node; PeakCores is the
	// node's maximum simultaneous core occupancy.
	Placed    int `json:"placed"`
	PeakCores int `json:"peak_cores,omitempty"`
	// Busy is the node's total core-time (Σ service time × cores over
	// placed instances); Utilization is Busy over makespan × cores.
	Busy        Duration `json:"busy_core_time"`
	Utilization float64  `json:"utilization"`
}

// WorkloadReport is one workload's slice of the scenario outcome.
type WorkloadReport struct {
	Name string `json:"name"`
	// Machine is the emulation resource instances replayed on; with a
	// cluster block instances replay on the machine of the node they
	// were placed on, and this reads "cluster".
	Machine string `json:"machine"`
	// Emulations counts completed instances; Dropped the ones cut by the
	// horizon before starting.
	Emulations int `json:"emulations"`
	Dropped    int `json:"dropped,omitempty"`
	// Throughput is completed instances per virtual second of scenario
	// makespan.
	Throughput float64 `json:"throughput_per_s"`
	// Latency is sojourn time (arrival → completion); Wait the queueing
	// delay before a concurrency slot freed (arrival → start); Service
	// the emulation time itself (start → completion).
	Latency LatencySummary `json:"latency"`
	Wait    LatencySummary `json:"wait"`
	Service LatencySummary `json:"service"`
	// BusyTime breaks down per-atom busy time summed over completed
	// instances, sorted by atom name.
	BusyTime []AtomBusy `json:"busy_time,omitempty"`
	// Consumed aggregates the resources completed instances consumed.
	Consumed perfcount.Counters `json:"consumed"`
}

// AtomBusy is one atom's total busy time within a workload.
type AtomBusy struct {
	Atom string   `json:"atom"`
	Busy Duration `json:"busy"`
}

// LatencySummary condenses a latency distribution.
type LatencySummary struct {
	Mean Duration `json:"mean"`
	P50  Duration `json:"p50"`
	P90  Duration `json:"p90"`
	P99  Duration `json:"p99"`
	Max  Duration `json:"max"`
}

// atomNames are the emulation atoms a report can break busy time down by.
var atomNames = []string{"compute", "memory", "network", "storage"}

// instance is one emulation of one workload in the mix.
type instance struct {
	w    int // workload index in the spec
	idx  int // enumeration index within the workload
	iter int // closed-loop iteration (client encoded by enumeration)
	load float64
	// arrival is fixed at enumeration time for open-loop processes;
	// closed-loop arrivals chain off completions in the scheduler.
	arrival time.Duration
	// node and eff are assigned at placement in cluster mode: the host
	// node index and the contention-adjusted effective load.
	node int
	eff  float64
	// tx is the instance's emulation time — measured eagerly without a
	// cluster, resolved at placement with one; start/done are assigned
	// by the scheduler.
	tx    time.Duration
	start time.Duration
	done  time.Duration
	ran   bool
}

// workloadState is the per-workload compilation product.
type workloadState struct {
	spec    *Workload
	machine string
	// run replays instances without a cluster; runs holds one handle per
	// node machine with one (instances replay on the node they land on).
	run  *emulator.Run
	runs map[string]*emulator.Run
	// req is the per-instance resource demand on a cluster node.
	req cluster.Request
	// insts indexes this workload's instances in the global table:
	// insts[idx] is the global id of enumeration index idx. Closed-loop
	// instance (client c, iteration k) lives at idx c*Iterations+k.
	insts   []int
	dropped int
}

// jobKey identifies one distinct emulation: instances sharing a key share a
// single deterministic replay.
type jobKey struct {
	w       int
	machine string // node machine in cluster mode; "" otherwise
	load    uint64 // Float64bits of the (effective) load
}

// Run executes the scenario: profiles resolve through st, every instance
// emulates on the batched replay engine across opts.Workers goroutines, and
// the discrete-event scheduler aggregates the virtual-time outcome.
func Run(ctx context.Context, spec *Spec, st store.Store, opts RunOptions) (*Report, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if st == nil {
		return nil, fmt.Errorf("scenario: no store to resolve profiles from")
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Build the cluster, if the spec models one. The random policy's
	// generator derives from the scenario seed, so placement is part of
	// the (spec, seed) determinism contract.
	var cl *cluster.Cluster
	if spec.Cluster != nil {
		var err error
		cl, err = cluster.New(spec.Cluster, stats.NewRNG(clusterSeed(spec.Seed)))
		if err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
	}

	// Compile: resolve each workload's profile and build its reusable
	// emulation handles — one per node machine with a cluster, one total
	// without.
	wls := make([]*workloadState, len(spec.Workloads))
	for i := range spec.Workloads {
		w := &spec.Workloads[i]
		set, err := st.Find(w.Profile.Command, w.Profile.Tags)
		if err != nil {
			return nil, fmt.Errorf("scenario: workload %q: resolve profile: %w", w.Name, err)
		}
		p := set[len(set)-1]
		ws := &workloadState{spec: w}
		if cl == nil {
			machineName := w.Emulation.Machine
			if machineName == "" {
				machineName = p.Machine
			}
			run, err := core.NewEmulation(p, w.emulateOptions(machineName))
			if err != nil {
				return nil, fmt.Errorf("scenario: workload %q: %w", w.Name, err)
			}
			ws.machine = machineName
			ws.run = run
		} else {
			ws.machine = "cluster"
			ws.req = w.request()
			if !cl.Fits(ws.req) {
				return nil, fmt.Errorf("scenario: workload %q: an instance needs %d cores and %d bytes but fits no cluster node",
					w.Name, ws.req.Cores, ws.req.MemBytes)
			}
			ws.runs = make(map[string]*emulator.Run)
			for _, m := range cl.Models() {
				run, err := core.NewEmulationOn(p, m, w.emulateOptions(m.Name))
				if err != nil {
					return nil, fmt.Errorf("scenario: workload %q on %q: %w", w.Name, m.Name, err)
				}
				ws.runs[m.Name] = run
			}
		}
		wls[i] = ws
	}

	// Enumerate: draw every workload's instances (arrival times for open
	// loops, per-instance load) from its seeded generator.
	var insts []*instance
	for i, ws := range wls {
		rng := stats.NewRNG(workloadSeed(spec.Seed, i, ws.spec.Name))
		ws.enumerate(spec, i, rng, func(in *instance) {
			in.idx = len(ws.insts)
			in.node = -1
			ws.insts = append(ws.insts, len(insts))
			insts = append(insts, in)
		})
	}

	// Execute. Without a cluster, emulation is eager: each (workload,
	// load) emulation is deterministic, so instances sharing both replay
	// once and share the report — a no-jitter workload costs one replay
	// no matter how many instances arrive — and results do not depend on
	// scheduling. Known trade-off: execution is eager, so a jittered
	// closed loop whose chains the horizon later cuts replays instances
	// the scheduler never starts.
	//
	// With a cluster, the effective load is only known at placement (it
	// folds in the host node's occupancy), so emulation is demand-driven:
	// the scheduler resolves each instant's placements as a batch, fanned
	// across the workers, memoized on (workload, node machine, load).
	reports := make([]*emulator.Report, len(insts))
	memo := make(map[jobKey]*emulator.Report)
	replays := 0
	var resolve resolver
	if cl == nil {
		jobOf := make(map[jobKey]int, len(insts))
		jobIdx := make([]int, len(insts))
		var jobs []int // representative instance per distinct job, first-seen order
		for i, in := range insts {
			k := jobKey{w: in.w, load: math.Float64bits(in.load)}
			j, ok := jobOf[k]
			if !ok {
				j = len(jobs)
				jobOf[k] = j
				jobs = append(jobs, i)
			}
			jobIdx[i] = j
		}
		jobReports, err := exp.Fan(workers, len(jobs), nil, func(j int) (*emulator.Report, error) {
			in := insts[jobs[j]]
			return wls[in.w].run.EmulateWithLoad(ctx, in.load)
		})
		if err != nil {
			return nil, err
		}
		for i := range insts {
			reports[i] = jobReports[jobIdx[i]]
			insts[i].tx = reports[i].Tx
		}
		replays = len(jobs)
	} else {
		key := func(in *instance) jobKey {
			return jobKey{w: in.w, machine: cl.MachineName(in.node), load: math.Float64bits(in.eff)}
		}
		resolve = func(placed []int) error {
			var keys []jobKey
			var reprs []*instance
			for _, id := range placed {
				in := insts[id]
				k := key(in)
				if _, ok := memo[k]; ok {
					continue
				}
				memo[k] = nil // claimed for this batch
				keys = append(keys, k)
				reprs = append(reprs, in)
			}
			if len(keys) > 0 {
				reps, err := exp.Fan(workers, len(keys), nil, func(j int) (*emulator.Report, error) {
					in := reprs[j]
					return wls[in.w].runs[cl.MachineName(in.node)].EmulateWithLoad(ctx, in.eff)
				})
				if err != nil {
					return err
				}
				for j, k := range keys {
					memo[k] = reps[j]
				}
			}
			for _, id := range placed {
				in := insts[id]
				r := memo[key(in)]
				reports[id] = r
				in.tx = r.Tx
			}
			return nil
		}
	}

	// Schedule: play the arrivals out on the virtual timeline.
	completed, makespan, err := schedule(spec, wls, insts, cl, resolve)
	if err != nil {
		return nil, err
	}

	rep := assemble(spec, wls, insts, reports, completed, makespan)
	if cl != nil {
		replays = len(memo)
		rep.Cluster = clusterReport(cl, makespan)
	}
	rep.Replays = replays
	return rep, nil
}

// clusterReport folds the cluster's accounting into the report.
func clusterReport(cl *cluster.Cluster, makespan time.Duration) *ClusterReport {
	cr := &ClusterReport{
		Policy:     cl.Policy(),
		Placements: cl.Placements(),
		Rejections: cl.Rejections(),
	}
	for i := 0; i < cl.Len(); i++ {
		info := cl.Info(i)
		nr := NodeReport{
			Name:      info.Name,
			Machine:   info.Machine,
			Cores:     info.Cores,
			Placed:    info.Placed,
			PeakCores: info.PeakCores,
			Busy:      Duration(info.Busy),
		}
		if cap := makespan.Seconds() * float64(info.Cores); cap > 0 {
			nr.Utilization = info.Busy.Seconds() / cap
		}
		cr.Nodes = append(cr.Nodes, nr)
	}
	return cr
}

// workloadSeed derives a workload's generator seed from the scenario seed:
// mixing in both position and name keeps draws independent across workloads
// and stable under reordering-free edits elsewhere in the spec.
func workloadSeed(seed uint64, i int, name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return seed ^ h.Sum64() ^ (uint64(i+1) * 0x9e3779b97f4a7c15)
}

// clusterSeed derives the placement generator's seed (the random policy)
// from the scenario seed, independent of every workload stream.
func clusterSeed(seed uint64) uint64 {
	h := fnv.New64a()
	h.Write([]byte("cluster"))
	return seed ^ h.Sum64()
}

// emulateOptions maps the workload's emulation knobs onto core options.
func (w *Workload) emulateOptions(machineName string) core.EmulateOptions {
	e := &w.Emulation
	opts := core.EmulateOptions{
		Machine:    machineName,
		Kernel:     e.Kernel,
		Workers:    e.Workers,
		Load:       e.Load,
		TraceLevel: emulator.TraceNone,
	}
	switch e.Mode {
	case "openmp":
		opts.Mode = machine.ModeOpenMP
	case "mpi":
		opts.Mode = machine.ModeMPI
	}
	for _, a := range e.DisableAtoms {
		switch a {
		case "storage":
			opts.DisableStorage = true
		case "memory":
			opts.DisableMemory = true
		case "network":
			opts.DisableNetwork = true
		}
	}
	return opts
}

// enumerate emits the workload's instances in deterministic order: clients ×
// iterations for the closed loop, arrival order for open loops. Open-loop
// arrivals past the scenario horizon are dropped here; closed-loop chains
// are cut by the scheduler when a completion lands past the horizon.
func (ws *workloadState) enumerate(spec *Spec, w int, rng *stats.RNG, emit func(*instance)) {
	a := &ws.spec.Arrival
	horizon := spec.Duration.D()
	jitter := func() float64 {
		e := &ws.spec.Emulation
		if e.LoadJitter <= 0 {
			return e.Load
		}
		// Draws stay below 1 by validation (Load + LoadJitter < 1);
		// only the lower bound needs clamping.
		return math.Max(e.Load+e.LoadJitter*(2*rng.Float64()-1), 0)
	}
	switch a.Process {
	case ArrivalClosed:
		for c := 0; c < a.Clients; c++ {
			for k := 0; k < a.Iterations; k++ {
				emit(&instance{w: w, iter: k, load: jitter()})
			}
		}
	case ArrivalConstant, ArrivalPoisson:
		step := time.Duration(float64(time.Second) / a.Rate)
		var t time.Duration
		for i := 0; a.Count == 0 || i < a.Count; i++ {
			if i > 0 {
				if a.Process == ArrivalConstant {
					t += step
				} else {
					u := rng.Float64()
					t += time.Duration(-math.Log(1-u) / a.Rate * float64(time.Second))
				}
			}
			if horizon > 0 && t > horizon {
				if a.Count > 0 {
					ws.dropped += a.Count - i
				}
				return
			}
			emit(&instance{w: w, arrival: t, load: jitter()})
		}
	case ArrivalBurst:
		for b := 0; a.Bursts == 0 || b < a.Bursts; b++ {
			t := time.Duration(b) * a.Every.D()
			if horizon > 0 && t > horizon {
				if a.Bursts > 0 {
					ws.dropped += (a.Bursts - b) * a.Burst
				}
				return
			}
			for j := 0; j < a.Burst; j++ {
				emit(&instance{w: w, arrival: t, load: jitter()})
			}
		}
	}
}

// event is one point on the scheduler's virtual timeline.
type event struct {
	t    time.Duration
	kind int // completions (0) before arrivals (1) at equal times
	inst int
	seq  uint64
}

const (
	evComplete = iota
	evArrive
)

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	if h[i].kind != h[j].kind {
		return h[i].kind < h[j].kind
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// resolver assigns tx (and emulation reports) to a scheduling instant's
// freshly placed instances. Nil means tx is already known (eager mode).
type resolver func(placed []int) error

// schedule replays arrivals, placement, queueing and completions on the
// virtual timeline and returns the number of completed instances and the
// makespan. Admission is FIFO by arrival with skip-ahead: an instance
// blocked only by its own workload's cap (or, with a cluster, by its
// workload's resource request not fitting any node right now) does not
// block other workloads behind it. Events are drained one virtual instant
// at a time, so each instant's placements resolve as one batch.
func schedule(spec *Spec, wls []*workloadState, insts []*instance, cl *cluster.Cluster, resolve resolver) (completed int, makespan time.Duration, err error) {
	var events eventHeap
	var seq uint64
	push := func(t time.Duration, kind, inst int) {
		seq++
		heap.Push(&events, event{t: t, kind: kind, inst: inst, seq: seq})
	}

	// Seed the timeline: open-loop arrivals are known; every closed-loop
	// client's first iteration arrives at t=0.
	for _, ws := range wls {
		if ws.spec.Arrival.Process == ArrivalClosed {
			iters := ws.spec.Arrival.Iterations
			for c := 0; c < ws.spec.Arrival.Clients; c++ {
				push(0, evArrive, ws.insts[c*iters])
			}
		} else {
			for _, id := range ws.insts {
				push(insts[id].arrival, evArrive, id)
			}
		}
	}

	horizon := spec.Duration.D()
	gmax := spec.MaxConcurrent
	running := 0
	wrunning := make([]int, len(wls))

	// Pending instances queue FIFO per workload (append-only with a head
	// cursor — no splicing); enq stamps global arrival order. Admission
	// picks the earliest-enqueued eligible head across workloads, which
	// is exactly a global FIFO scan that skips entries of saturated
	// workloads (everything behind a blocked head in its own queue
	// belongs to the same saturated workload), in O(workloads) per
	// admission instead of O(pending) per event.
	queues := make([][]int, len(wls))
	heads := make([]int, len(wls))
	enq := make([]int, len(insts))
	enqSeq := 0

	// blocked caches, per instant, workloads whose resource request found
	// no feasible node: capacity only shrinks within an instant (releases
	// happen in event processing, before admission), so one failed probe
	// per workload per instant suffices.
	blocked := make([]bool, len(wls))

	admit := func(now time.Duration) []int {
		var placed []int
		if cl != nil {
			for w := range blocked {
				blocked[w] = false
			}
		}
		for {
			if gmax > 0 && running >= gmax {
				break
			}
			best := -1
			for w := range queues {
				if heads[w] >= len(queues[w]) {
					continue
				}
				wmax := wls[w].spec.MaxConcurrent
				if wmax > 0 && wrunning[w] >= wmax {
					continue
				}
				if blocked[w] {
					continue
				}
				id := queues[w][heads[w]]
				if best < 0 || enq[id] < enq[best] {
					best = id
				}
			}
			if best < 0 {
				break
			}
			in := insts[best]
			if cl != nil {
				node, occ, ok := cl.Place(wls[in.w].req)
				if !ok {
					blocked[in.w] = true
					continue
				}
				in.node = node
				in.eff = cl.EffectiveLoad(node, in.load, occ)
			}
			in.start = now
			in.ran = true
			running++
			wrunning[in.w]++
			heads[in.w]++
			placed = append(placed, best)
		}
		return placed
	}

	for events.Len() > 0 {
		now := events[0].t
		for events.Len() > 0 && events[0].t == now {
			e := heap.Pop(&events).(event)
			in := insts[e.inst]
			switch e.kind {
			case evArrive:
				in.arrival = e.t
				enqSeq++
				enq[e.inst] = enqSeq
				queues[in.w] = append(queues[in.w], e.inst)
			case evComplete:
				running--
				wrunning[in.w]--
				completed++
				if e.t > makespan {
					makespan = e.t
				}
				if cl != nil {
					cl.Release(in.node, wls[in.w].req)
				}
				ws := wls[in.w]
				a := &ws.spec.Arrival
				if a.Process == ArrivalClosed && in.iter+1 < a.Iterations {
					// The client issues its next iteration the moment
					// this one completes — unless the horizon has
					// passed, which cuts the rest of the chain.
					if horizon > 0 && e.t > horizon {
						ws.dropped += a.Iterations - (in.iter + 1)
					} else {
						push(e.t, evArrive, ws.insts[in.idx+1])
					}
				}
			}
		}
		placed := admit(now)
		if len(placed) == 0 {
			continue
		}
		if resolve != nil {
			if err := resolve(placed); err != nil {
				return 0, 0, err
			}
		}
		for _, id := range placed {
			in := insts[id]
			in.done = now + in.tx
			push(in.done, evComplete, id)
			if cl != nil {
				cl.AddBusy(in.node, time.Duration(wls[in.w].req.Cores)*in.tx)
			}
		}
	}
	return completed, makespan, nil
}

// assemble folds the instance outcomes into the report, in spec order —
// every sum runs in deterministic instance order, so reports are
// byte-identical across runs and worker counts.
func assemble(spec *Spec, wls []*workloadState, insts []*instance, reports []*emulator.Report, completed int, makespan time.Duration) *Report {
	rep := &Report{
		Scenario:   spec.Name,
		Seed:       spec.Seed,
		Makespan:   Duration(makespan),
		Emulations: completed,
	}
	if secs := makespan.Seconds(); secs > 0 {
		rep.Throughput = float64(completed) / secs
	}
	var allSojourn []float64
	for _, ws := range wls {
		wr := WorkloadReport{
			Name:    ws.spec.Name,
			Machine: ws.machine,
			Dropped: ws.dropped,
		}
		var sojourn, wait, service []float64
		busy := make(map[string]time.Duration, len(atomNames))
		for _, id := range ws.insts {
			in := insts[id]
			if !in.ran {
				continue
			}
			wr.Emulations++
			sojourn = append(sojourn, float64(in.done-in.arrival))
			wait = append(wait, float64(in.start-in.arrival))
			service = append(service, float64(in.tx))
			r := reports[id]
			for _, a := range atomNames {
				busy[a] += r.BusyTime(a)
			}
			wr.Consumed.Accumulate(&r.Consumed)
		}
		if secs := makespan.Seconds(); secs > 0 {
			wr.Throughput = float64(wr.Emulations) / secs
		}
		wr.Latency = summarize(sojourn)
		wr.Wait = summarize(wait)
		wr.Service = summarize(service)
		for _, a := range atomNames {
			if busy[a] > 0 {
				wr.BusyTime = append(wr.BusyTime, AtomBusy{Atom: a, Busy: Duration(busy[a])})
			}
		}
		sort.Slice(wr.BusyTime, func(i, j int) bool { return wr.BusyTime[i].Atom < wr.BusyTime[j].Atom })
		rep.Dropped += ws.dropped
		rep.Workloads = append(rep.Workloads, wr)
		allSojourn = append(allSojourn, sojourn...)
	}
	rep.Latency = summarize(allSojourn)
	return rep
}

// summarize condenses a duration sample (in float64 nanoseconds) into the
// report's latency summary.
func summarize(xs []float64) LatencySummary {
	if len(xs) == 0 {
		return LatencySummary{}
	}
	pct := func(p float64) Duration {
		v, err := stats.Percentile(xs, p)
		if err != nil {
			return 0
		}
		return Duration(v)
	}
	return LatencySummary{
		Mean: Duration(stats.Mean(xs)),
		P50:  pct(50),
		P90:  pct(90),
		P99:  pct(99),
		Max:  Duration(stats.Max(xs)),
	}
}
