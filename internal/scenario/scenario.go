// Package scenario composes stored profiles into workload mixes: many
// applications arriving over time on a shared resource, instead of one
// profile replayed in isolation.
//
// A Spec is a declarative, versioned JSON description of the mix: named
// profile references resolved through any store.Store (including the remote
// synapsed client), a per-workload arrival process (closed-loop clients,
// open-loop Poisson or constant rate, bursts), concurrency limits, and
// per-workload emulation options. Run compiles the spec (compile.go) onto
// the batched replay engine and plays it out on the discrete-event kernel
// of internal/sim: arrivals, placements and completions are handlers posted
// onto the kernel's virtual timeline (sched.go), and aggregation is a
// metrics sink folding the kernel's event stream into the Report
// (report.go, timeline.go).
//
// With a cluster block the shared resource becomes a finite pool of
// machines (internal/cluster): arriving instances are placed on nodes by
// the spec's policy — queueing when no node fits — replay on the machine
// of the node they land on, and slow down with colocation: the node's core
// occupancy at placement maps onto the replay's background load through
// the contention model. An events block makes that pool dynamic: scheduled
// node failures, recoveries, drains and additions — displaced instances
// are killed and deterministically retried — plus a queue-threshold
// autoscale rule, with an optional bucketed time-series (Report.Timeline)
// recording what the end-of-run aggregates average away.
//
// Everything is deterministic for a fixed (spec, seed): every random draw
// derives from a named kernel stream (sim.Stream), and the same scenario
// produces a byte-identical Report at any worker count, which is what makes
// mixes usable for workload-placement studies — change one knob, diff the
// report (the use case of Merzky & Jha, "Bridging the Gap Towards
// Predictable Workload Placement").
package scenario

import (
	"context"
	"fmt"
	"io"
	"math"
	"runtime"

	"synapse/internal/sim"
	"synapse/internal/store"
	"synapse/internal/telemetry"
)

// RunOptions tune scenario execution (not its outcome).
type RunOptions struct {
	// Workers bounds the parallel emulation fan-out; 0 uses GOMAXPROCS,
	// 1 forces serial execution. The report is identical at any value.
	Workers int
	// Executor, when non-nil, resolves replay jobs instead of this
	// process's emulation handles — the seam distributed execution plugs
	// into (internal/dist). Run then skips building local run handles
	// entirely; the executor owns the compute. Any conforming executor
	// (see the Executor contract) leaves the report byte-identical.
	Executor Executor
	// Trace, when non-nil, receives the run as Chrome trace-event JSON
	// (loadable in Perfetto / chrome://tracing): one async span per placed
	// instance, queue/running counter series, node lifecycle instants. The
	// trace derives from the kernel's deterministic event order, so a
	// (spec, seed) pair always produces byte-identical output. The report
	// is unaffected.
	Trace io.Writer
	// Progress, when non-nil, receives a live single-line meter (virtual
	// time, arrivals/s, queue depth) repainted in place — point it at
	// stderr. Purely cosmetic; the report is unaffected.
	Progress io.Writer
}

// jobKey identifies one distinct emulation: instances sharing a key share a
// single deterministic replay.
type jobKey struct {
	w       int
	machine string // node machine in cluster mode; "" otherwise
	load    uint64 // Float64bits of the (effective) load
}

// defaultWorkers is the fan-out Run and JobRunner use when none is set.
func defaultWorkers() int { return runtime.GOMAXPROCS(0) }

// checkOuts verifies an executor honored its contract shape-wise: one
// non-nil outcome per job, in order.
func checkOuts(jobs []Job, outs []*Outcome) error {
	if len(outs) != len(jobs) {
		return fmt.Errorf("scenario: executor returned %d outcomes for %d jobs", len(outs), len(jobs))
	}
	for i, o := range outs {
		if o == nil {
			return fmt.Errorf("scenario: executor returned nil outcome for job %d", i)
		}
	}
	return nil
}

// Run executes the scenario: profiles resolve through st, every instance
// emulates on the batched replay engine across opts.Workers goroutines, and
// the discrete-event kernel plays out the virtual-time outcome.
func Run(ctx context.Context, spec *Spec, st store.Store, opts RunOptions) (*Report, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if st == nil {
		return nil, fmt.Errorf("scenario: no store to resolve profiles from")
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = defaultWorkers()
	}

	exec := opts.Executor
	c, err := compile(ctx, spec, st, exec == nil)
	if err != nil {
		return nil, err
	}
	if exec == nil {
		exec = localExecutor{c: c, workers: workers}
	}

	// Execute. Without a cluster, emulation is eager: each (workload,
	// load) emulation is deterministic, so instances sharing both replay
	// once and share the report — a no-jitter workload costs one replay
	// no matter how many instances arrive — and results do not depend on
	// scheduling. Known trade-off: execution is eager, so a jittered
	// closed loop whose chains the horizon later cuts replays instances
	// the scheduler never starts.
	//
	// With a cluster, the effective load is only known at placement (it
	// folds in the host node's occupancy), so emulation is demand-driven:
	// the scheduler resolves each instant's placements as a batch, fanned
	// across the workers, memoized on (workload, node machine, load).
	//
	// Either way, each distinct job's outcome is condensed into a compact
	// foldRec the moment it arrives — the wire Outcome (and, through the
	// StreamingExecutor seam, the executor's own buffers) is released long
	// before the fold, so a run retains one flat record per replay, not
	// one decoded response per shard.
	recs := make([]*foldRec, len(c.insts))
	memo := make(map[jobKey]*foldRec)
	replays := 0
	var resolve resolver
	if c.cl == nil {
		jobOf := make(map[jobKey]int, len(c.insts))
		jobIdx := make([]int, len(c.insts))
		var jobs []Job // distinct jobs, first-seen order
		for i, in := range c.insts {
			k := jobKey{w: in.w, load: math.Float64bits(in.load)}
			j, ok := jobOf[k]
			if !ok {
				j = len(jobs)
				jobOf[k] = j
				jobs = append(jobs, Job{Workload: k.w, LoadBits: k.load})
			}
			jobIdx[i] = j
		}
		jobRecs := make([]foldRec, len(jobs))
		if se, ok := exec.(StreamingExecutor); ok {
			// Streaming fold: contiguous job-order batches arrive as the
			// executor completes them; each is folded to records in place
			// and the outcomes dropped, so peak resident outcomes follow
			// the executor's window, not the job count.
			folded := 0
			err := se.ExecuteJobsStream(ctx, jobs, func(first int, outs []*Outcome) error {
				if first != folded {
					return fmt.Errorf("scenario: executor streamed batch at %d, fold watermark is %d", first, folded)
				}
				if first+len(outs) > len(jobs) {
					return fmt.Errorf("scenario: executor streamed %d outcomes past %d jobs", first+len(outs), len(jobs))
				}
				for k, o := range outs {
					if o == nil {
						return fmt.Errorf("scenario: executor streamed nil outcome for job %d", first+k)
					}
					jobRecs[first+k].set(o)
				}
				folded += len(outs)
				return nil
			})
			if err != nil {
				return nil, err
			}
			if folded != len(jobs) {
				return nil, fmt.Errorf("scenario: executor streamed %d outcomes for %d jobs", folded, len(jobs))
			}
		} else {
			jobOuts, err := exec.ExecuteJobs(ctx, jobs)
			if err != nil {
				return nil, err
			}
			if err := checkOuts(jobs, jobOuts); err != nil {
				return nil, err
			}
			for j, o := range jobOuts {
				jobRecs[j].set(o)
			}
		}
		for i := range c.insts {
			recs[i] = &jobRecs[jobIdx[i]]
			c.insts[i].tx = recs[i].tx
		}
		replays = len(jobs)
	} else {
		key := func(in *instance) jobKey {
			return jobKey{w: in.w, machine: c.cl.MachineName(in.node), load: math.Float64bits(in.eff)}
		}
		resolve = func(placed []int) error {
			var keys []jobKey
			var jobs []Job
			for _, id := range placed {
				in := c.insts[id]
				k := key(in)
				if _, ok := memo[k]; ok {
					continue
				}
				memo[k] = nil // claimed for this batch
				keys = append(keys, k)
				jobs = append(jobs, Job{Workload: k.w, Machine: k.machine, LoadBits: k.load})
			}
			if len(jobs) > 0 {
				reps, err := exec.ExecuteJobs(ctx, jobs)
				if err != nil {
					return err
				}
				if err := checkOuts(jobs, reps); err != nil {
					return err
				}
				batch := make([]foldRec, len(jobs))
				for j, k := range keys {
					batch[j].set(reps[j])
					memo[k] = &batch[j]
				}
			}
			for _, id := range placed {
				in := c.insts[id]
				rec := memo[key(in)]
				recs[id] = rec
				in.tx = rec.tx
			}
			return nil
		}
	}

	// Schedule: play the compiled scenario out on the kernel's virtual
	// timeline, with the aggregation (and optional time-series) sinks
	// observing the event stream.
	k := sim.New()
	rp := newReporter(len(c.wls))
	k.Attach(rp)
	var tl *timelineSink
	if spec.Timeline != nil {
		tl = newTimelineSink(spec.Timeline.Bucket.D(), len(c.wls), c.cl)
		k.Attach(tl)
	}
	var trace *traceState
	if opts.Trace != nil {
		var sink *telemetry.TraceSink
		sink, trace = newTraceSink(opts.Trace, c)
		k.Attach(sink)
	}
	var prog *progressSink
	if opts.Progress != nil {
		prog = newProgressSink(opts.Progress)
		k.Attach(prog)
	}
	s := newSched(k, c, resolve)
	if err := s.run(); err != nil {
		return nil, err
	}
	if trace != nil {
		if err := trace.close(); err != nil {
			return nil, err
		}
	}
	if prog != nil {
		prog.finish(rp.makespan)
	}

	rep := assemble(c, rp, recs)
	if c.cl != nil {
		replays = len(memo)
		rep.Cluster = clusterReport(c.cl, s, rp.makespan)
	}
	rep.Replays = replays
	if tl != nil {
		timeline, err := tl.finalize(rp.makespan, c.wls)
		if err != nil {
			return nil, err
		}
		rep.Timeline = timeline
	}
	return rep, nil
}
