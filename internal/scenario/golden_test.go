package scenario

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden report fixtures in testdata/")

// TestGoldenReports locks the determinism contract across refactors: the
// specs in testdata/*.spec.json — chosen so no draw from the seeded streams
// reaches the report (closed/constant/burst arrivals, zero load jitter,
// non-random placement policies) — must keep producing byte-identical
// reports, at every worker count, as the engine underneath them is rebuilt.
//
// The fixtures were captured from the pre-sim-kernel engine; a diff here
// means the refactor changed scheduling, placement, aggregation or
// marshaling semantics, not just internals. Regenerate (after convincing
// yourself the change is intended) with:
//
//	go test ./internal/scenario -run TestGoldenReports -update
func TestGoldenReports(t *testing.T) {
	specs, err := filepath.Glob(filepath.Join("testdata", "*.spec.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) < 3 {
		t.Fatalf("expected at least 3 golden specs in testdata/, found %d", len(specs))
	}
	st := seedStore(t, "mdsim", "sleep")
	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, specPath := range specs {
		name := strings.TrimSuffix(filepath.Base(specPath), ".spec.json")
		t.Run(name, func(t *testing.T) {
			spec, err := Load(specPath)
			if err != nil {
				t.Fatal(err)
			}
			var got, gotCSV []byte
			for _, workers := range workerCounts {
				rep, err := Run(context.Background(), spec, st, RunOptions{Workers: workers})
				if err != nil {
					t.Fatalf("workers %d: %v", workers, err)
				}
				b := append(marshal(t, rep), '\n')
				var csv []byte
				if rep.Timeline != nil {
					var buf bytes.Buffer
					if err := rep.TimelineCSV(&buf); err != nil {
						t.Fatalf("workers %d: timeline csv: %v", workers, err)
					}
					csv = buf.Bytes()
				}
				if got == nil {
					got, gotCSV = b, csv
				} else if !bytes.Equal(got, b) {
					t.Fatalf("%d workers changed the report:\n%s\n---\n%s", workers, got, b)
				} else if !bytes.Equal(gotCSV, csv) {
					t.Fatalf("%d workers changed the timeline csv:\n%s\n---\n%s", workers, gotCSV, csv)
				}
			}
			goldenPath := filepath.Join("testdata", name+".golden.json")
			csvPath := filepath.Join("testdata", name+".timeline.golden.csv")
			if *update {
				if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
					t.Fatal(err)
				}
				if gotCSV != nil {
					if err := os.WriteFile(csvPath, gotCSV, 0o644); err != nil {
						t.Fatal(err)
					}
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("report diverged from golden %s\ngot:\n%s\nwant:\n%s", goldenPath, got, want)
			}
			if gotCSV != nil {
				wantCSV, err := os.ReadFile(csvPath)
				if err != nil {
					t.Fatalf("missing timeline golden (run with -update to create): %v", err)
				}
				if !bytes.Equal(gotCSV, wantCSV) {
					t.Errorf("timeline diverged from golden %s\ngot:\n%s\nwant:\n%s", csvPath, gotCSV, wantCSV)
				}
			}
		})
	}
}
