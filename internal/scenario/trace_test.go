package scenario

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"synapse/internal/telemetry"
)

func runTraced(t *testing.T, spec *Spec) ([]byte, *Report) {
	t.Helper()
	st := seedStore(t, "mdsim", "sleep")
	var buf bytes.Buffer
	rep, err := Run(context.Background(), spec, st, RunOptions{Workers: 1, Trace: &buf})
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), rep
}

// TestTraceValidAndComplete: a traced run emits Perfetto-loadable
// trace-event JSON with one async begin/end pair per placement, counter
// series, and node lifecycle instants for cluster runs.
func TestTraceValidAndComplete(t *testing.T) {
	data, rep := runTraced(t, eventSpec())
	sum, err := telemetry.ParseTrace(data)
	if err != nil {
		t.Fatalf("trace invalid: %v\n%s", err, data)
	}
	// Every placement opens a span; completions and kills close them.
	wantSpans := rep.Emulations + rep.Killed
	if sum.Phases["b"] != wantSpans {
		t.Errorf("span begins = %d, want %d (emulations %d + killed %d)",
			sum.Phases["b"], wantSpans, rep.Emulations, rep.Killed)
	}
	if sum.Phases["e"] != wantSpans {
		t.Errorf("span ends = %d, want %d", sum.Phases["e"], wantSpans)
	}
	if sum.Phases["C"] == 0 {
		t.Error("no counter events in trace")
	}
	if sum.Phases["i"] == 0 {
		t.Error("no instant events (node lifecycle) in trace")
	}
	s := string(data)
	for _, want := range []string{
		`"killed":true`,         // the node-down kills are flagged on the span end
		"node down",             // lifecycle instant
		`"queued"`, `"running"`, // counter series
	} {
		if !strings.Contains(s, want) {
			t.Errorf("trace missing %q", want)
		}
	}
}

// TestTraceDeterministic: the trace derives from the kernel's event order,
// so one (spec, seed) gives byte-identical bytes, and tracing must not
// perturb the report (golden fixtures pin report bytes separately).
func TestTraceDeterministic(t *testing.T) {
	a, repA := runTraced(t, mixSpec())
	b, _ := runTraced(t, mixSpec())
	if !bytes.Equal(a, b) {
		t.Fatal("same spec+seed produced different traces")
	}
	plain := marshal(t, runReport(t, mixSpec(), 1))
	traced := marshal(t, repA)
	if !bytes.Equal(plain, traced) {
		t.Fatalf("tracing changed the report:\n%s\n---\n%s", plain, traced)
	}
}

// TestProgressMeter: the meter paints at least a final line carrying the
// headline numbers and ends with a newline so the shell prompt is clean.
func TestProgressMeter(t *testing.T) {
	st := seedStore(t, "mdsim", "sleep")
	var buf bytes.Buffer
	rep, err := Run(context.Background(), mixSpec(), st, RunOptions{Workers: 1, Progress: &buf})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasSuffix(out, "\n") {
		t.Errorf("progress output does not terminate its line: %q", out)
	}
	last := out[strings.LastIndex(strings.TrimRight(out, "\n"), "\r")+1:]
	for _, want := range []string{"t=", "arrived=16", "done=16", "queue=0", "arrivals/s="} {
		if !strings.Contains(last, want) {
			t.Errorf("final meter line missing %q: %q", want, last)
		}
	}
	// The meter must not perturb the report.
	if rep.Emulations == 0 {
		t.Error("report empty under progress meter")
	}
}
