package scenario

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzParseScenario hardens the spec parser against arbitrary input: Parse
// must never panic, and any spec it accepts must re-marshal to a canonical
// form that re-parses to the same canonical form (marshal ∘ parse is a
// fixed point). That catches fields that decode but do not encode, lossy
// duration handling, and validation that is weaker than the marshaler.
func FuzzParseScenario(f *testing.F) {
	f.Add([]byte(`{
		"version": 1,
		"name": "mix",
		"seed": 42,
		"duration": "90s",
		"max_concurrent": 4,
		"workloads": [
			{
				"name": "md",
				"profile": {"command": "mdsim", "tags": {"steps": "10000"}},
				"arrival": {"process": "closed", "clients": 2, "iterations": 4},
				"emulation": {"machine": "stampede", "load": 0.1, "load_jitter": 0.05}
			},
			{
				"name": "io",
				"profile": {"command": "iobench"},
				"arrival": {"process": "poisson", "rate": 0.5, "count": 8},
				"max_concurrent": 2
			}
		]
	}`))
	f.Add([]byte(`{
		"version": 1,
		"name": "placed",
		"cluster": {
			"policy": "least_loaded",
			"contention": 0.4,
			"machines": {"pocket": {"name": "pocket", "clock_ghz": 1, "cores": 2,
			                        "mem_gb": 4, "mem_bw_gbs": 8}},
			"nodes": [{"machine": "pocket", "count": 2}]
		},
		"workloads": [{
			"name": "w",
			"profile": {"command": "mdsim"},
			"arrival": {"process": "burst", "burst": 3, "every": 2.5, "bursts": 2},
			"resources": {"cores": 1, "mem_gb": 0.5}
		}]
	}`))
	f.Add([]byte(`{
		"version": 1,
		"name": "failover",
		"seed": 9,
		"timeline": {"bucket": "1s"},
		"cluster": {
			"policy": "first_fit",
			"contention": 0,
			"nodes": [{"name": "a", "machine": "stampede", "cores": 4},
			          {"name": "b", "machine": "stampede", "cores": 4}]
		},
		"events": {
			"version": 1,
			"timeline": [
				{"at": "500ms", "kind": "node_down", "node": "a"},
				{"at": "2s", "kind": "node_drain", "node": "b"},
				{"at": "3s", "kind": "add_nodes", "add": {"name": "spare", "machine": "comet", "count": 2}},
				{"at": "10s", "kind": "node_up", "node": "a"}
			],
			"autoscale": {"check_every": "1s", "queue_high": 4, "queue_low": 1,
			              "add": {"name": "as", "machine": "comet", "cores": 2}, "max_nodes": 8}
		},
		"workloads": [{
			"name": "md",
			"profile": {"command": "mdsim"},
			"arrival": {"process": "burst", "burst": 4, "every": "1s", "bursts": 2},
			"resources": {"cores": 2}
		}]
	}`))
	f.Add([]byte(`{"version": 1, "workloads": []}`))
	f.Add([]byte(`{"version": 2}`))
	f.Add([]byte(`{"duration": -3}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{"version": 1, "workloads": [{"name": "w", "profile": {"command": "c"},
		"arrival": {"process": "constant", "rate": 1e308}}]}`))
	// Malformed events: bad times, unknown targets, version drift — all
	// must reject with positional errors, never panic.
	f.Add([]byte(`{"version": 1, "cluster": {"nodes": [{"machine": "stampede"}]},
		"events": {"version": 1, "timeline": [{"at": -1, "kind": "node_down", "node": "stampede"}]},
		"workloads": [{"name": "w", "profile": {"command": "c"},
		"arrival": {"process": "closed", "clients": 1, "iterations": 1}}]}`))
	f.Add([]byte(`{"version": 1, "cluster": {"nodes": [{"machine": "stampede"}]},
		"events": {"version": 1, "timeline": [{"at": "1s", "kind": "node_down", "node": "ghost"}]},
		"workloads": [{"name": "w", "profile": {"command": "c"},
		"arrival": {"process": "closed", "clients": 1, "iterations": 1}}]}`))
	f.Add([]byte(`{"version": 1, "events": {"version": 3}, "workloads": [{"name": "w",
		"profile": {"command": "c"}, "arrival": {"process": "closed", "clients": 1, "iterations": 1}}]}`))
	f.Add([]byte(`{"version": 1, "timeline": {"bucket": "-5s"}, "workloads": [{"name": "w",
		"profile": {"command": "c"}, "arrival": {"process": "closed", "clients": 1, "iterations": 1}}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := Parse(data)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		b1, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("accepted spec failed to marshal: %v", err)
		}
		spec2, err := Parse(b1)
		if err != nil {
			t.Fatalf("marshaled form of an accepted spec was rejected: %v\n%s", err, b1)
		}
		b2, err := json.Marshal(spec2)
		if err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatalf("marshal/parse is not a fixed point:\n%s\n---\n%s", b1, b2)
		}
	})
}
