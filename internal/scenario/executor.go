package scenario

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"synapse/internal/emulator"
	"synapse/internal/exp"
	"synapse/internal/perfcount"
	"synapse/internal/profile"
	"synapse/internal/store"
)

// Job identifies one distinct replay in a scenario run: instances of one
// workload with the same effective load on the same machine share a single
// deterministic emulation, and a Job names that equivalence class. Jobs are
// the unit of distributed execution — the coordinator ships them to workers,
// which resolve them against their own compilation of the same spec. Load
// travels as raw float bits so the wire never rounds it: two processes must
// agree bit-for-bit on the job identity or they are not running the same
// scenario.
type Job struct {
	// Workload is the workload's index in the spec.
	Workload int `json:"w"`
	// Machine is the node machine the replay runs on in cluster mode;
	// empty means the workload's own emulation machine (eager mode).
	Machine string `json:"machine,omitempty"`
	// LoadBits is math.Float64bits of the effective background load.
	LoadBits uint64 `json:"load_bits"`
}

// Load returns the job's effective load as a float64.
func (j Job) Load() float64 { return math.Float64frombits(j.LoadBits) }

// Outcome is the fold-relevant product of one replay job: everything the
// report aggregation consumes, nothing else. It is the wire type of the
// distributed worker protocol, chosen so that an outcome computed remotely
// is bit-identical to one computed in process — durations are integer
// nanoseconds and counters round-trip exactly through JSON — which is what
// makes the merged report byte-identical to a single-process run.
type Outcome struct {
	// Tx is the instance's emulation (service) time.
	Tx time.Duration `json:"tx"`
	// Busy is the per-atom busy time, atoms with zero activity omitted.
	Busy map[string]time.Duration `json:"busy,omitempty"`
	// Consumed aggregates what the atoms consumed replaying the instance.
	Consumed perfcount.Counters `json:"consumed"`
}

// outcomeOf condenses an emulator report into its fold-relevant outcome.
func outcomeOf(r *emulator.Report) *Outcome {
	o := &Outcome{Tx: r.Tx, Consumed: r.Consumed}
	for _, a := range atomNames {
		if b := r.BusyTime(a); b > 0 {
			if o.Busy == nil {
				o.Busy = make(map[string]time.Duration, len(atomNames))
			}
			o.Busy[a] = b
		}
	}
	return o
}

// Executor resolves batches of replay jobs. Run calls it once with every
// distinct job in eager (clusterless) mode, and once per scheduling instant
// with that instant's fresh jobs in cluster mode. Outcomes come back in job
// order. Implementations must be pure: the outcome of a job depends only on
// the (spec, seed) pair both sides compiled, never on batching, timing or
// which worker computed it — that invariance is the determinism contract
// distributed execution is gated on.
type Executor interface {
	ExecuteJobs(ctx context.Context, jobs []Job) ([]*Outcome, error)
}

// StreamingExecutor is the streaming-fold seam: an Executor that can
// deliver outcomes incrementally, in contiguous job-order batches, instead
// of materializing the whole result slice. sink is called with the global
// index of the batch's first outcome; batches arrive in order and
// concatenate to exactly one outcome per job. Ownership of the outcomes
// transfers to the sink — the executor must not touch them after sink
// returns, which is what lets it release buffered results behind its fold
// watermark and keep peak resident outcomes bounded by its window rather
// than by the job count. The outcomes themselves are byte-identical to
// what ExecuteJobs would return, so folding them incrementally leaves the
// report unchanged.
type StreamingExecutor interface {
	Executor
	ExecuteJobsStream(ctx context.Context, jobs []Job, sink func(first int, outs []*Outcome) error) error
}

// foldRec is the fold-relevant residue of one outcome: exactly the fields
// assemble reads, flattened (no per-atom map) so a long run retains a
// compact record per distinct job instead of the wire Outcome. The values
// are copied verbatim — busy times in atomNames order, counters unchanged —
// so folding records is byte-identical to folding the outcomes they came
// from.
type foldRec struct {
	tx       time.Duration
	busy     [len(atomNames)]time.Duration
	consumed perfcount.Counters
}

// set condenses an outcome into the record.
func (r *foldRec) set(o *Outcome) {
	r.tx = o.Tx
	for ai, a := range atomNames {
		r.busy[ai] = o.Busy[a]
	}
	r.consumed = o.Consumed
}

// localExecutor resolves jobs against this process's compiled run handles,
// fanning the batch across the configured workers.
type localExecutor struct {
	c       *compiled
	workers int
}

func (e localExecutor) ExecuteJobs(ctx context.Context, jobs []Job) ([]*Outcome, error) {
	return exp.Fan(e.workers, len(jobs), nil, func(j int) (*Outcome, error) {
		return e.executeJob(ctx, jobs[j])
	})
}

// executeJob resolves one job against the compiled run handles.
func (e localExecutor) executeJob(ctx context.Context, job Job) (*Outcome, error) {
	if job.Workload < 0 || job.Workload >= len(e.c.wls) {
		return nil, fmt.Errorf("scenario: job references workload %d of %d", job.Workload, len(e.c.wls))
	}
	ws := e.c.wls[job.Workload]
	run := ws.run
	if job.Machine != "" {
		run = ws.runs[job.Machine]
	}
	if run == nil {
		return nil, fmt.Errorf("scenario: workload %q has no emulation handle for machine %q",
			ws.spec.Name, job.Machine)
	}
	rep, err := run.EmulateWithLoad(ctx, job.Load())
	if err != nil {
		return nil, err
	}
	return outcomeOf(rep), nil
}

// ResolveProfiles resolves every workload's profile reference through st,
// in spec order — the same profile Run would pick (the newest match per
// key). Distributed coordinators use it to ship the exact emulation inputs
// to workers that have no store access of their own.
func ResolveProfiles(ctx context.Context, spec *Spec, st store.Store) ([]*profile.Profile, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	profs := make([]*profile.Profile, len(spec.Workloads))
	for i := range spec.Workloads {
		w := &spec.Workloads[i]
		set, err := store.FindCtx(ctx, st, w.Profile.Command, w.Profile.Tags)
		if err != nil {
			return nil, fmt.Errorf("scenario: workload %q: resolve profile: %w", w.Name, err)
		}
		profs[i] = set[len(set)-1]
	}
	return profs, nil
}

// JobRunner is the worker side of distributed execution: one spec compiled
// against a store, holding reusable emulation handles for every machine an
// instance could land on, ready to execute any shard's jobs. A runner built
// from the same (spec, profiles) on any host produces bit-identical
// outcomes, so a coordinator may hand the same job to any worker — or to a
// replacement after a failure — without perturbing the merged report.
type JobRunner struct {
	c       *compiled
	workers int
}

// NewJobRunner compiles spec against st (profiles must already be present)
// and returns a runner executing up to workers replays concurrently
// (0 = GOMAXPROCS).
func NewJobRunner(ctx context.Context, spec *Spec, st store.Store, workers int) (*JobRunner, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if st == nil {
		return nil, fmt.Errorf("scenario: no store to resolve profiles from")
	}
	c, err := compile(ctx, spec, st, true)
	if err != nil {
		return nil, err
	}
	return &JobRunner{c: c, workers: workers}, nil
}

// Seed returns the compiled spec's seed — the root every shard key derives
// from, echoed in the worker protocol's determinism handshake.
func (r *JobRunner) Seed() uint64 { return r.c.spec.Seed }

// ExecuteJobs implements Executor against the runner's compiled handles.
func (r *JobRunner) ExecuteJobs(ctx context.Context, jobs []Job) ([]*Outcome, error) {
	workers := r.workers
	if workers <= 0 {
		workers = defaultWorkers()
	}
	return localExecutor{c: r.c, workers: workers}.ExecuteJobs(ctx, jobs)
}

// defaultStreamBatch is the emission granularity ExecuteJobsStream falls
// back to when the caller passes none.
const defaultStreamBatch = 64

// ExecuteJobsStream executes jobs across the runner's fan-out and emits
// outcomes in job order as the contiguous prefix completes, at least batch
// at a time (0 picks a default) except for the final flush. The jobs run in
// parallel and complete out of order; a reorder buffer holds the gap and
// emit observes only the in-order view, so a consumer can fold and discard
// batches as they arrive. emit is never called concurrently. Outcomes are
// released to the consumer: the runner drops its references as it emits.
func (r *JobRunner) ExecuteJobsStream(ctx context.Context, jobs []Job, batch int, emit func(outs []*Outcome) error) error {
	workers := r.workers
	if workers <= 0 {
		workers = defaultWorkers()
	}
	if batch <= 0 {
		batch = defaultStreamBatch
	}
	local := localExecutor{c: r.c, workers: workers}
	var (
		mu   sync.Mutex
		outs = make([]*Outcome, len(jobs)) // reorder buffer; entries nil once emitted
		next int                           // emission watermark
	)
	_, err := exp.Fan(workers, len(jobs), nil, func(j int) (struct{}, error) {
		o, err := local.executeJob(ctx, jobs[j])
		if err != nil {
			return struct{}{}, err
		}
		mu.Lock()
		defer mu.Unlock()
		outs[j] = o
		// Emit the contiguous prefix once it is a full batch deep. Holding
		// mu serializes emit; the tail below flushes what remains.
		end := next
		for end < len(outs) && outs[end] != nil {
			end++
		}
		if end-next >= batch {
			run := outs[next:end]
			next = end
			if err := emit(run); err != nil {
				return struct{}{}, err
			}
			for i := range run {
				run[i] = nil
			}
		}
		return struct{}{}, nil
	})
	if err != nil {
		return err
	}
	if next < len(jobs) {
		if err := emit(outs[next:]); err != nil {
			return err
		}
	}
	return nil
}
