package scenario

import (
	"context"
	"testing"
)

// benchSpec is the benchmark mix: one closed-loop workload producing n
// emulations of a small profile per scenario run, on the batched replay
// path. Load jitter makes every instance a distinct replay, so the
// emulations/s metric measures real replay work, not the shared-report
// dedup path.
func benchSpec(clients, iterations int) *Spec {
	return &Spec{
		Version: SpecVersion,
		Name:    "bench",
		Seed:    1,
		Workloads: []Workload{{
			Name:      "md",
			Profile:   ProfileRef{Command: "mdsim", Tags: mdTags},
			Arrival:   Arrival{Process: ArrivalClosed, Clients: clients, Iterations: iterations},
			Emulation: Emulation{Machine: "stampede", Load: 0.2, LoadJitter: 0.15},
		}},
	}
}

// BenchmarkScenarioThroughput is the acceptance number for the scenario
// engine: aggregate completed emulations per wall-clock second, all cores.
// The custom metric is emulations/s.
func BenchmarkScenarioThroughput(b *testing.B) {
	st := seedStore(b, "mdsim")
	spec := benchSpec(4, 64) // 256 emulations per scenario run
	b.ReportAllocs()
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		rep, err := Run(context.Background(), spec, st, RunOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if rep.Replays != rep.Emulations {
			b.Fatalf("dedup kicked in (%d replays for %d emulations); the metric would lie", rep.Replays, rep.Emulations)
		}
		total += rep.Emulations
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "emulations/s")
}

// BenchmarkScenarioSerial pins the single-worker baseline the parallel
// fan-out is measured against.
func BenchmarkScenarioSerial(b *testing.B) {
	st := seedStore(b, "mdsim")
	spec := benchSpec(4, 64)
	b.ReportAllocs()
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		rep, err := Run(context.Background(), spec, st, RunOptions{Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		total += rep.Emulations
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "emulations/s")
}

// BenchmarkScenarioMix exercises the full scheduler: two workloads, open
// and closed arrivals, concurrency caps and jitter.
func BenchmarkScenarioMix(b *testing.B) {
	st := seedStore(b, "mdsim", "sleep")
	spec := mixSpec()
	b.ReportAllocs()
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		rep, err := Run(context.Background(), spec, st, RunOptions{})
		if err != nil {
			b.Fatal(err)
		}
		total += rep.Emulations
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "emulations/s")
}
