package scenario

import (
	"context"
	"testing"
	"time"

	"synapse/internal/cluster"
)

// benchSpec is the benchmark mix: one closed-loop workload producing n
// emulations of a small profile per scenario run, on the batched replay
// path. Load jitter makes every instance a distinct replay, so the
// emulations/s metric measures real replay work, not the shared-report
// dedup path.
func benchSpec(clients, iterations int) *Spec {
	return &Spec{
		Version: SpecVersion,
		Name:    "bench",
		Seed:    1,
		Workloads: []Workload{{
			Name:      "md",
			Profile:   ProfileRef{Command: "mdsim", Tags: mdTags},
			Arrival:   Arrival{Process: ArrivalClosed, Clients: clients, Iterations: iterations},
			Emulation: Emulation{Machine: "stampede", Load: 0.2, LoadJitter: 0.15},
		}},
	}
}

// BenchmarkScenarioThroughput is the acceptance number for the scenario
// engine: aggregate completed emulations per wall-clock second, all cores.
// The custom metric is emulations/s.
func BenchmarkScenarioThroughput(b *testing.B) {
	st := seedStore(b, "mdsim")
	spec := benchSpec(4, 64) // 256 emulations per scenario run
	b.ReportAllocs()
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		rep, err := Run(context.Background(), spec, st, RunOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if rep.Replays != rep.Emulations {
			b.Fatalf("dedup kicked in (%d replays for %d emulations); the metric would lie", rep.Replays, rep.Emulations)
		}
		total += rep.Emulations
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "emulations/s")
}

// BenchmarkScenarioSerial pins the single-worker baseline the parallel
// fan-out is measured against.
func BenchmarkScenarioSerial(b *testing.B) {
	st := seedStore(b, "mdsim")
	spec := benchSpec(4, 64)
	b.ReportAllocs()
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		rep, err := Run(context.Background(), spec, st, RunOptions{Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		total += rep.Emulations
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "emulations/s")
}

// placementBenchSpec is the clustered benchmark mix: jittered bursts and a
// closed loop placed onto a finite four-node pool, so the metric covers
// policy decisions, contention-derived loads and the demand-driven memoized
// replay path.
func placementBenchSpec(policy string) *Spec {
	contention := 0.4
	return &Spec{
		Version: SpecVersion,
		Name:    "bench-placement",
		Seed:    1,
		Cluster: &cluster.Spec{
			Policy:     policy,
			Contention: &contention,
			Nodes: []cluster.NodeSpec{
				{Name: "stamp", Machine: "stampede", Count: 2, Cores: 8},
				{Name: "comet", Machine: "comet", Count: 2, Cores: 4},
			},
		},
		Workloads: []Workload{
			{
				Name:      "md-closed",
				Profile:   ProfileRef{Command: "mdsim", Tags: mdTags},
				Arrival:   Arrival{Process: ArrivalClosed, Clients: 8, Iterations: 8},
				Resources: &Resources{Cores: 2},
				Emulation: Emulation{Load: 0.1, LoadJitter: 0.08},
			},
			{
				Name:      "md-bursts",
				Profile:   ProfileRef{Command: "mdsim", Tags: mdTags},
				Arrival:   Arrival{Process: ArrivalBurst, Burst: 16, Every: Duration(2 * time.Second), Bursts: 4},
				Resources: &Resources{Cores: 1},
				Emulation: Emulation{Load: 0.2, LoadJitter: 0.15},
			},
		},
	}
}

// BenchmarkPlacement is the acceptance number for the cluster engine:
// completed emulations per wall-clock second through placement, contention
// and the demand-driven replay path, per policy.
func BenchmarkPlacement(b *testing.B) {
	for _, policy := range []string{
		cluster.PolicyFirstFit, cluster.PolicyBestFit,
		cluster.PolicyLeastLoaded, cluster.PolicyRandom,
	} {
		b.Run(policy, func(b *testing.B) {
			st := seedStore(b, "mdsim")
			spec := placementBenchSpec(policy)
			b.ReportAllocs()
			b.ResetTimer()
			total := 0
			for i := 0; i < b.N; i++ {
				rep, err := Run(context.Background(), spec, st, RunOptions{})
				if err != nil {
					b.Fatal(err)
				}
				total += rep.Emulations
			}
			b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "emulations/s")
		})
	}
}

// BenchmarkPlacementSerial pins the single-worker baseline for the
// demand-driven batch path.
func BenchmarkPlacementSerial(b *testing.B) {
	st := seedStore(b, "mdsim")
	spec := placementBenchSpec(cluster.PolicyLeastLoaded)
	b.ReportAllocs()
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		rep, err := Run(context.Background(), spec, st, RunOptions{Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		total += rep.Emulations
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "emulations/s")
}

// BenchmarkScenarioMix exercises the full scheduler: two workloads, open
// and closed arrivals, concurrency caps and jitter.
func BenchmarkScenarioMix(b *testing.B) {
	st := seedStore(b, "mdsim", "sleep")
	spec := mixSpec()
	b.ReportAllocs()
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		rep, err := Run(context.Background(), spec, st, RunOptions{})
		if err != nil {
			b.Fatal(err)
		}
		total += rep.Emulations
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "emulations/s")
}
