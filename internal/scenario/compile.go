package scenario

import (
	"context"
	"fmt"
	"math"
	"time"

	"synapse/internal/cluster"
	"synapse/internal/core"
	"synapse/internal/emulator"
	"synapse/internal/machine"
	"synapse/internal/profile"
	"synapse/internal/sim"
	"synapse/internal/stats"
	"synapse/internal/store"
)

// instance is one emulation of one workload in the mix.
type instance struct {
	w    int // workload index in the spec
	idx  int // enumeration index within the workload
	iter int // closed-loop iteration (client encoded by enumeration)
	load float64
	// arrival is fixed at enumeration time for open-loop processes;
	// closed-loop arrivals chain off completions in the scheduler.
	arrival time.Duration
	// node and eff are assigned at placement in cluster mode: the host
	// node index and the contention-adjusted effective load.
	node int
	eff  float64
	// tx is the instance's emulation time — measured eagerly without a
	// cluster, resolved at placement with one; start/done are assigned
	// by the scheduler.
	tx    time.Duration
	start time.Duration
	done  time.Duration
	// ran marks a (currently or finally) placed instance; running marks
	// one between placement and completion. gen invalidates the pending
	// completion when a node failure kills the instance mid-run.
	ran     bool
	running bool
	gen     int
}

// workloadState is the per-workload compilation product.
type workloadState struct {
	spec    *Workload
	machine string
	// prof is the resolved profile — kept so distributed coordinators can
	// ship the exact emulation inputs to workers without store access.
	prof *profile.Profile
	// run replays instances without a cluster; runs holds one handle per
	// node machine with one (instances replay on the node they land on —
	// including nodes that only join the pool through events).
	run  *emulator.Run
	runs map[string]*emulator.Run
	// req is the per-instance resource demand on a cluster node.
	req cluster.Request
	// insts indexes this workload's instances in the global table:
	// insts[idx] is the global id of enumeration index idx. Closed-loop
	// instance (client c, iteration k) lives at idx c*Iterations+k.
	insts   []int
	dropped int
	killed  int
}

// compiled is a spec resolved against a store and ready to schedule:
// emulation handles built, cluster constructed, instances enumerated.
type compiled struct {
	spec  *Spec
	wls   []*workloadState
	insts []*instance
	cl    *cluster.Cluster
}

// compile resolves the spec: the cluster (when modeled) with its seeded
// placement stream, each workload's profile and reusable emulation
// handles — one per machine the workload could land on, which with an
// events block includes machines only event-added nodes bring — and the
// deterministic instance enumeration from each workload's named stream.
// With buildRuns false the emulation handles are skipped: an external
// Executor owns the compute, and this process only needs the scheduling
// view (cluster, instances, resolved profiles).
func compile(ctx context.Context, spec *Spec, st store.Store, buildRuns bool) (*compiled, error) {
	c := &compiled{spec: spec}

	// Build the cluster, if the spec models one. The random policy's
	// generator derives from the scenario seed's "cluster" stream, so
	// placement is part of the (spec, seed) determinism contract.
	if spec.Cluster != nil {
		var err error
		c.cl, err = cluster.New(spec.Cluster, stats.NewRNG(sim.Stream(spec.Seed, "cluster")))
		if err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
	}

	// Machines that join the pool only through events still need
	// emulation handles and count toward "could this request ever fit".
	models := map[string]*machine.Model{}
	var shapes []cluster.Request
	if c.cl != nil {
		for _, m := range c.cl.Models() {
			models[m.Name] = m
		}
		if spec.Events != nil {
			for i := range spec.Events.Timeline {
				ev := &spec.Events.Timeline[i]
				if ev.Kind != EventAddNodes {
					continue
				}
				if err := c.eventMachine(models, &shapes, *ev.Add); err != nil {
					return nil, fmt.Errorf("scenario: events: timeline[%d]: add_nodes: %w", i, err)
				}
			}
			if a := spec.Events.Autoscale; a != nil {
				if err := c.eventMachine(models, &shapes, a.Add); err != nil {
					return nil, fmt.Errorf("scenario: events: autoscale: add: %w", err)
				}
			}
		}
	}

	// Compile: resolve each workload's profile and build its reusable
	// emulation handles — one per reachable machine with a cluster, one
	// total without.
	c.wls = make([]*workloadState, len(spec.Workloads))
	for i := range spec.Workloads {
		w := &spec.Workloads[i]
		set, err := store.FindCtx(ctx, st, w.Profile.Command, w.Profile.Tags)
		if err != nil {
			return nil, fmt.Errorf("scenario: workload %q: resolve profile: %w", w.Name, err)
		}
		p := set[len(set)-1]
		ws := &workloadState{spec: w, prof: p}
		if c.cl == nil {
			machineName := w.Emulation.Machine
			if machineName == "" {
				machineName = p.Machine
			}
			ws.machine = machineName
			if buildRuns {
				run, err := core.NewEmulation(p, w.emulateOptions(machineName))
				if err != nil {
					return nil, fmt.Errorf("scenario: workload %q: %w", w.Name, err)
				}
				ws.run = run
			}
		} else {
			ws.machine = "cluster"
			ws.req = w.request()
			if !c.fits(ws.req, shapes) {
				return nil, fmt.Errorf("scenario: workload %q: an instance needs %d cores and %d bytes but fits no cluster node",
					w.Name, ws.req.Cores, ws.req.MemBytes)
			}
			if buildRuns {
				ws.runs = make(map[string]*emulator.Run)
				for _, m := range models {
					run, err := core.NewEmulationOn(p, m, w.emulateOptions(m.Name))
					if err != nil {
						return nil, fmt.Errorf("scenario: workload %q on %q: %w", w.Name, m.Name, err)
					}
					ws.runs[m.Name] = run
				}
			}
		}
		c.wls[i] = ws
	}

	// Enumerate: draw every workload's instances (arrival times for open
	// loops, per-instance load) from its seeded named stream. Instances
	// live in chunked arenas — pointers into a chunk stay valid because a
	// full chunk is retired, never regrown — so a million-instance mix
	// costs thousands of allocations instead of one per instance. The
	// batched reader serves the stream's exact draw sequence, so the
	// enumeration stays bit-identical to per-draw RNG calls.
	var chunk []instance
	alloc := func(in instance) *instance {
		if len(chunk) == cap(chunk) {
			chunk = make([]instance, 0, instChunk)
		}
		chunk = append(chunk, in)
		return &chunk[len(chunk)-1]
	}
	for i, ws := range c.wls {
		rng := stats.NewBatch(stats.NewRNG(sim.Stream(spec.Seed, "workload/"+ws.spec.Name)))
		ws.enumerate(spec, i, rng, func(v instance) {
			in := alloc(v)
			in.idx = len(ws.insts)
			in.node = -1
			ws.insts = append(ws.insts, len(c.insts))
			c.insts = append(c.insts, in)
		})
	}
	return c, nil
}

// instChunk is the instance-arena chunk capacity: large enough that arena
// bookkeeping is noise, small enough that a tiny mix doesn't overcommit.
const instChunk = 1024

// eventMachine resolves one event node template's machine, recording its
// model for emulation-handle construction and its capacity shape for the
// could-it-ever-fit check.
func (c *compiled) eventMachine(models map[string]*machine.Model, shapes *[]cluster.Request, ns cluster.NodeSpec) error {
	m, err := c.cl.ResolveModel(ns.Machine)
	if err != nil {
		return err
	}
	models[m.Name] = m
	cores, mem, err := c.cl.ShapeOf(ns)
	if err != nil {
		return err
	}
	*shapes = append(*shapes, cluster.Request{Cores: cores, MemBytes: mem})
	return nil
}

// fits reports whether the request fits some empty node of the initial
// pool or some node an event could add — anything else would queue
// forever.
func (c *compiled) fits(r cluster.Request, shapes []cluster.Request) bool {
	if c.cl.Fits(r) {
		return true
	}
	for _, s := range shapes {
		if r.Cores <= s.Cores && r.MemBytes <= s.MemBytes {
			return true
		}
	}
	return false
}

// emulateOptions maps the workload's emulation knobs onto core options.
func (w *Workload) emulateOptions(machineName string) core.EmulateOptions {
	e := &w.Emulation
	opts := core.EmulateOptions{
		Machine:    machineName,
		Kernel:     e.Kernel,
		Workers:    e.Workers,
		Load:       e.Load,
		TraceLevel: emulator.TraceNone,
	}
	switch e.Mode {
	case "openmp":
		opts.Mode = machine.ModeOpenMP
	case "mpi":
		opts.Mode = machine.ModeMPI
	}
	for _, a := range e.DisableAtoms {
		switch a {
		case "storage":
			opts.DisableStorage = true
		case "memory":
			opts.DisableMemory = true
		case "network":
			opts.DisableNetwork = true
		}
	}
	return opts
}

// enumerate emits the workload's instances in deterministic order: clients ×
// iterations for the closed loop, arrival order for open loops. Open-loop
// arrivals past the scenario horizon are dropped here; closed-loop chains
// are cut by the scheduler when a completion lands past the horizon.
func (ws *workloadState) enumerate(spec *Spec, w int, rng *stats.Batch, emit func(instance)) {
	a := &ws.spec.Arrival
	horizon := spec.Duration.D()
	jitter := func() float64 {
		e := &ws.spec.Emulation
		if e.LoadJitter <= 0 {
			return e.Load
		}
		// Draws stay below 1 by validation (Load + LoadJitter < 1);
		// only the lower bound needs clamping.
		return math.Max(e.Load+e.LoadJitter*(2*rng.Float64()-1), 0)
	}
	switch a.Process {
	case ArrivalClosed:
		for c := 0; c < a.Clients; c++ {
			for k := 0; k < a.Iterations; k++ {
				emit(instance{w: w, iter: k, load: jitter()})
			}
		}
	case ArrivalConstant, ArrivalPoisson:
		step := time.Duration(float64(time.Second) / a.Rate)
		var t time.Duration
		for i := 0; a.Count == 0 || i < a.Count; i++ {
			if i > 0 {
				if a.Process == ArrivalConstant {
					t += step
				} else {
					u := rng.Float64()
					t += time.Duration(-math.Log(1-u) / a.Rate * float64(time.Second))
				}
			}
			if horizon > 0 && t > horizon {
				if a.Count > 0 {
					ws.dropped += a.Count - i
				}
				return
			}
			emit(instance{w: w, arrival: t, load: jitter()})
		}
	case ArrivalBurst:
		for b := 0; a.Bursts == 0 || b < a.Bursts; b++ {
			t := time.Duration(b) * a.Every.D()
			if horizon > 0 && t > horizon {
				if a.Bursts > 0 {
					ws.dropped += (a.Bursts - b) * a.Burst
				}
				return
			}
			for j := 0; j < a.Burst; j++ {
				emit(instance{w: w, arrival: t, load: jitter()})
			}
		}
	}
}
