package scenario

import (
	"fmt"
	"time"

	"synapse/internal/cluster"
	"synapse/internal/sim"
)

// Priority bands on the kernel: at one virtual instant, completions land
// first (freeing capacity and chaining closed loops), then arrivals join
// the queues, then the event timeline mutates the pool, then the
// autoscaler reads the resulting pressure — and only after all of that
// does the instant's admission (the kernel's per-instant hook) place
// work, so each instant's placements resolve as one batch against the
// instant's final pool.
const (
	prioComplete sim.Priority = iota
	prioArrive
	prioEvent
	prioAutoscale
)

// Sink events: the typed observations the scheduler emits through the
// kernel to whatever sinks are attached (the report aggregator, the
// time-series sink). All of them fire on the kernel's timeline, so sinks
// see one deterministic sequence.
type (
	// evArrived: an instance joined its workload's queue.
	evArrived struct{ w int }
	// evStarted: an instance was placed and began service. node is -1
	// without a cluster. id is the global instance index — stable across
	// kill-and-retry, so sinks can pair starts with completions/kills.
	evStarted struct{ w, node, cores, id int }
	// evCompleted: an instance finished service.
	evCompleted struct{ w, node, cores, id int }
	// evKilled: a node failure killed a running instance; it re-joined
	// its queue (kill-and-retry).
	evKilled struct{ w, node, cores, id int }
	// evDropped: n instances of workload w were dropped — queued ones
	// (stranded) or unarrived closed-loop successors (horizon cuts).
	evDropped struct {
		w, n   int
		queued bool
	}
	// evNode: a node changed lifecycle state (including joining the
	// pool, which arrives as state "up").
	evNode struct {
		node  int
		name  string
		cores int
		state string
	}
)

// resolver assigns tx (and emulation reports) to a scheduling instant's
// freshly placed instances. Nil means tx is already known (eager mode).
type resolver func(placed []int) error

// sched plays a compiled scenario on the sim kernel: arrivals, placement,
// queueing, completions, pool events and autoscaling on the virtual
// timeline.
type sched struct {
	k       *sim.Kernel
	spec    *Spec
	wls     []*workloadState
	insts   []*instance
	cl      *cluster.Cluster
	resolve resolver

	horizon time.Duration
	gmax    int

	// Pending instances queue FIFO per workload (append-only with a head
	// cursor — no splicing); enq stamps global arrival order. Admission
	// picks the earliest-enqueued eligible head across workloads, which
	// is exactly a global FIFO scan that skips entries of saturated
	// workloads (everything behind a blocked head in its own queue
	// belongs to the same saturated workload), in O(workloads) per
	// admission instead of O(pending) per event.
	queues [][]int
	heads  []int
	enq    []int
	enqSeq int

	// blocked caches, per instant, workloads whose resource request found
	// no feasible node: within admission capacity only shrinks (events
	// that grow it run earlier in the instant), so one failed probe per
	// workload per instant suffices.
	blocked []bool

	running  int
	wrunning []int

	completed   int
	killed      int
	outstanding int // enumerated instances not yet completed or dropped

	// Event/autoscale accounting.
	eventsApplied int
	autoNodes     []int // node indices the autoscaler manages
	autoAdded     int   // distinct nodes the autoscaler created
	autoSeq       int   // monotone name counter for autoscaled nodes
	lastAuto      [4]int

	// Scratch event values, reused across Emit calls so the hot path
	// (arrive/start/complete per instance) never boxes into the heap.
	// Sinks see pointers and must copy anything they keep.
	scrArrived   evArrived
	scrStarted   evStarted
	scrCompleted evCompleted
	scrKilled    evKilled
	scrDropped   evDropped
	scrNode      evNode

	// Pre-bound kernel handlers, created once in newSched: posting an
	// arrival or completion then costs no closure allocation — the
	// instance id (and generation) travel inline in the heap entry.
	hArrive    sim.Handler // a = instance id
	hComplete  sim.Handler // a = instance id, b = generation
	hEvent     sim.Handler // a = timeline event index
	hAutoscale sim.Handler // a = the check's virtual time in ns

	// placedBuf backs admit's result: one buffer reused every instant.
	placedBuf []int

	err error
}

func (s *sched) emitArrived(w int) {
	s.scrArrived = evArrived{w: w}
	s.k.Emit(&s.scrArrived)
}

func (s *sched) emitStarted(w, node, cores, id int) {
	s.scrStarted = evStarted{w: w, node: node, cores: cores, id: id}
	s.k.Emit(&s.scrStarted)
}

func (s *sched) emitCompleted(w, node, cores, id int) {
	s.scrCompleted = evCompleted{w: w, node: node, cores: cores, id: id}
	s.k.Emit(&s.scrCompleted)
}

func (s *sched) emitKilled(w, node, cores, id int) {
	s.scrKilled = evKilled{w: w, node: node, cores: cores, id: id}
	s.k.Emit(&s.scrKilled)
}

func (s *sched) emitDropped(w, n int, queued bool) {
	s.scrDropped = evDropped{w: w, n: n, queued: queued}
	s.k.Emit(&s.scrDropped)
}

// newSched wires a compiled scenario onto a kernel.
func newSched(k *sim.Kernel, c *compiled, resolve resolver) *sched {
	s := &sched{
		k:        k,
		spec:     c.spec,
		wls:      c.wls,
		insts:    c.insts,
		cl:       c.cl,
		resolve:  resolve,
		horizon:  c.spec.Duration.D(),
		gmax:     c.spec.MaxConcurrent,
		queues:   make([][]int, len(c.wls)),
		heads:    make([]int, len(c.wls)),
		enq:      make([]int, len(c.insts)),
		blocked:  make([]bool, len(c.wls)),
		wrunning: make([]int, len(c.wls)),

		outstanding: len(c.insts),
	}
	// Bind the kernel handlers once; every post after this is
	// allocation-free (the ids travel inline in the heap entries).
	s.hArrive = func(a, _ int64) { s.arrive(int(a)) }
	s.hComplete = func(a, b int64) { s.complete(int(a), int(b)) }
	s.hEvent = func(a, _ int64) { s.applyEvent(&s.spec.Events.Timeline[a]) }
	s.hAutoscale = func(a, _ int64) { s.autoscale(time.Duration(a)) }
	return s
}

// run seeds the timeline and drains it. It returns the first resolver (or
// runtime event) error; whatever is still queued when the timeline dries
// up — possible only when events shrank the pool for good — is counted
// dropped, chains included.
func (s *sched) run() error {
	// Pre-size the event arena: at most one pending arrival per instance
	// plus the event timeline and one autoscale check coexist in the heap,
	// so the steady state never grows it.
	events := 0
	if ev := s.spec.Events; ev != nil {
		events = len(ev.Timeline) + 1
	}
	s.k.Reserve(len(s.insts) + events + 1)
	// Seed the timeline: open-loop arrivals are known; every closed-loop
	// client's first iteration arrives at t=0.
	for _, ws := range s.wls {
		if ws.spec.Arrival.Process == ArrivalClosed {
			iters := ws.spec.Arrival.Iterations
			for c := 0; c < ws.spec.Arrival.Clients; c++ {
				id := ws.insts[c*iters]
				s.k.PostHandler(0, prioArrive, s.hArrive, int64(id), 0)
			}
		} else {
			for _, id := range ws.insts {
				s.k.PostHandler(s.insts[id].arrival, prioArrive, s.hArrive, int64(id), 0)
			}
		}
	}
	// The event timeline and the autoscaler's first check.
	if ev := s.spec.Events; ev != nil {
		for i := range ev.Timeline {
			s.k.PostHandler(ev.Timeline[i].At.D(), prioEvent, s.hEvent, int64(i), 0)
		}
		if a := ev.Autoscale; a != nil {
			t := a.CheckEvery.D()
			s.k.PostHandler(t, prioAutoscale, s.hAutoscale, int64(t), 0)
		}
	}

	s.k.Run(s.instant)
	if s.err != nil {
		return s.err
	}
	s.strandDrops()
	return nil
}

// arrive enqueues an instance at the current instant.
func (s *sched) arrive(id int) {
	in := s.insts[id]
	in.arrival = s.k.Now()
	s.enqSeq++
	s.enq[id] = s.enqSeq
	s.queues[in.w] = append(s.queues[in.w], id)
	s.emitArrived(in.w)
}

// complete finishes an instance's service — unless gen says a node
// failure killed this placement, making the pending completion stale.
func (s *sched) complete(id, gen int) {
	in := s.insts[id]
	if in.gen != gen || !in.running {
		return
	}
	now := s.k.Now()
	in.running = false
	s.running--
	s.wrunning[in.w]--
	s.completed++
	s.outstanding--
	ws := s.wls[in.w]
	cores := 0
	if s.cl != nil {
		cores = ws.req.Cores
		s.cl.Release(in.node, ws.req)
		s.cl.AddBusy(in.node, time.Duration(cores)*in.tx)
	}
	s.emitCompleted(in.w, in.node, cores, id)
	a := &ws.spec.Arrival
	if a.Process == ArrivalClosed && in.iter+1 < a.Iterations {
		// The client issues its next iteration the moment this one
		// completes — unless the horizon has passed, which cuts the
		// rest of the chain.
		if s.horizon > 0 && now > s.horizon {
			n := a.Iterations - (in.iter + 1)
			ws.dropped += n
			s.outstanding -= n
			s.emitDropped(in.w, n, false)
		} else {
			next := ws.insts[in.idx+1]
			s.k.PostHandler(now, prioArrive, s.hArrive, int64(next), 0)
		}
	}
}

// applyEvent mutates the pool per one timeline event. Already-satisfied
// transitions (downing a down node, reviving an up one) are no-ops.
func (s *sched) applyEvent(e *ClusterEvent) {
	s.eventsApplied++
	switch e.Kind {
	case EventNodeDown, EventNodeUp, EventNodeDrain:
		idx := s.cl.FindNode(e.Node)
		if idx < 0 {
			// Validation pins targets to the pool as scheduled; an
			// unresolvable one here is a programming error upstream.
			s.fail(fmt.Errorf("scenario: events: %s: unknown node %q", e.Kind, e.Node))
			return
		}
		switch e.Kind {
		case EventNodeDown:
			s.downNode(idx)
		case EventNodeUp:
			s.upNode(idx)
		case EventNodeDrain:
			if s.cl.State(idx) == cluster.StateUp {
				s.cl.SetDrain(idx)
				s.emitNode(idx)
			}
		}
	case EventAddNodes:
		added, err := s.cl.AddNodes(*e.Add)
		if err != nil {
			s.fail(fmt.Errorf("scenario: events: add_nodes %q: %w", e.Add.Machine, err))
			return
		}
		for _, idx := range added {
			s.emitNode(idx)
		}
	}
}

// downNode takes a node out of the pool, killing and re-queueing whatever
// ran on it: each victim releases its resources, charges the node for the
// service it consumed before dying, and re-joins its workload queue (in
// global instance order — deterministic) to retry from scratch.
func (s *sched) downNode(idx int) {
	if s.cl.State(idx) == cluster.StateDown {
		return
	}
	now := s.k.Now()
	for id, in := range s.insts {
		if !in.running || in.node != idx {
			continue
		}
		ws := s.wls[in.w]
		in.running = false
		in.ran = false
		in.gen++ // the pending completion is now stale
		s.running--
		s.wrunning[in.w]--
		s.killed++
		ws.killed++
		s.cl.Release(idx, ws.req)
		s.cl.AddBusy(idx, time.Duration(ws.req.Cores)*(now-in.start))
		s.cl.AddKilled(idx)
		s.emitKilled(in.w, idx, ws.req.Cores, id)
		// Retry: back of the workload's queue, original arrival kept.
		s.enqSeq++
		s.enq[id] = s.enqSeq
		s.queues[in.w] = append(s.queues[in.w], id)
	}
	s.cl.SetDown(idx)
	s.emitNode(idx)
}

// upNode returns a node to the pool.
func (s *sched) upNode(idx int) {
	if s.cl.State(idx) == cluster.StateUp {
		return
	}
	s.cl.SetUp(idx)
	s.emitNode(idx)
}

// autoscale is the recurring queue-threshold check. It reschedules itself
// while the run can still make progress; a run that is provably stuck
// (nothing running, nothing scheduled, no pool change since the last
// check, and this check did nothing) lets the timeline dry up so the
// stranded queue is accounted and the run terminates.
func (s *sched) autoscale(t time.Duration) {
	a := s.spec.Events.Autoscale
	queued := 0
	for w := range s.queues {
		queued += len(s.queues[w]) - s.heads[w]
	}
	acted := false
	if queued >= a.QueueHigh {
		acted = s.scaleUp(a)
	} else if queued <= a.QueueLow {
		for _, idx := range s.autoNodes {
			if s.cl.State(idx) == cluster.StateUp && s.cl.Idle(idx) {
				s.cl.SetDown(idx)
				s.emitNode(idx)
			}
		}
	}
	if s.err != nil {
		return
	}
	snap := [4]int{s.completed, s.killed, s.cl.Placements(), s.cl.LiveNodes()}
	stuck := snap == s.lastAuto && !acted && s.running == 0 && s.k.Len() == 0
	s.lastAuto = snap
	if s.outstanding > 0 && !stuck {
		next := t + a.CheckEvery.D()
		s.k.PostHandler(next, prioAutoscale, s.hAutoscale, int64(next), 0)
	}
}

// scaleUp revives autoscaled nodes taken down by earlier scale-downs,
// then creates new ones ("name-0", "name-1", ... off the template), up to
// the template count per step and MaxNodes live overall.
func (s *sched) scaleUp(a *Autoscale) bool {
	want := a.Add.Count
	if want == 0 {
		want = 1
	}
	if a.MaxNodes > 0 {
		if room := a.MaxNodes - s.cl.LiveNodes(); room < want {
			want = room
		}
	}
	acted := false
	for _, idx := range s.autoNodes {
		if want <= 0 {
			break
		}
		if s.cl.State(idx) == cluster.StateDown {
			s.cl.SetUp(idx)
			s.emitNode(idx)
			want--
			acted = true
		}
	}
	base := a.Add.Name
	if base == "" {
		base = a.Add.Machine
	}
	for ; want > 0; want-- {
		ns := a.Add
		ns.Name = fmt.Sprintf("%s-%d", base, s.autoSeq)
		ns.Count = 1
		s.autoSeq++
		added, err := s.cl.AddNodes(ns)
		if err != nil {
			s.fail(fmt.Errorf("scenario: events: autoscale: %w", err))
			return acted
		}
		s.autoNodes = append(s.autoNodes, added[0])
		s.autoAdded++
		s.emitNode(added[0])
		acted = true
	}
	return acted
}

// emitNode reports a node's current shape and state to the sinks.
func (s *sched) emitNode(idx int) {
	info := s.cl.Info(idx)
	s.scrNode = evNode{node: idx, name: info.Name, cores: info.Cores, state: info.State}
	s.k.Emit(&s.scrNode)
}

// fail records the first error and stops the kernel.
func (s *sched) fail(err error) {
	if s.err == nil {
		s.err = err
		s.k.Stop()
	}
}

// instant is the kernel's per-instant hook: admit everything the instant's
// final capacity allows, resolve the fresh placements' emulations as one
// batch, and schedule their completions.
func (s *sched) instant() {
	if s.err != nil {
		return
	}
	now := s.k.Now()
	placed := s.admit()
	if len(placed) == 0 {
		return
	}
	if s.resolve != nil {
		if err := s.resolve(placed); err != nil {
			s.fail(err)
			return
		}
	}
	for _, id := range placed {
		in := s.insts[id]
		cores := 0
		if s.cl != nil {
			cores = s.wls[in.w].req.Cores
		}
		s.emitStarted(in.w, in.node, cores, id)
		in.done = now + in.tx
		s.k.PostHandler(in.done, prioComplete, s.hComplete, int64(id), int64(in.gen))
	}
}

// admit places queued instances until capacity or the queues run out:
// FIFO by arrival with skip-ahead — an instance blocked only by its own
// workload's cap (or, with a cluster, by its workload's resource request
// not fitting any node right now) does not block other workloads behind
// it.
func (s *sched) admit() []int {
	now := s.k.Now()
	placed := s.placedBuf[:0]
	if s.cl != nil {
		for w := range s.blocked {
			s.blocked[w] = false
		}
	}
	for {
		if s.gmax > 0 && s.running >= s.gmax {
			break
		}
		best := -1
		for w := range s.queues {
			if s.heads[w] >= len(s.queues[w]) {
				continue
			}
			wmax := s.wls[w].spec.MaxConcurrent
			if wmax > 0 && s.wrunning[w] >= wmax {
				continue
			}
			if s.blocked[w] {
				continue
			}
			id := s.queues[w][s.heads[w]]
			if best < 0 || s.enq[id] < s.enq[best] {
				best = id
			}
		}
		if best < 0 {
			break
		}
		in := s.insts[best]
		if s.cl != nil {
			node, occ, ok := s.cl.Place(s.wls[in.w].req)
			if !ok {
				s.blocked[in.w] = true
				continue
			}
			in.node = node
			in.eff = s.cl.EffectiveLoad(node, in.load, occ)
		}
		in.start = now
		in.ran = true
		in.running = true
		s.running++
		s.wrunning[in.w]++
		s.heads[in.w]++
		placed = append(placed, best)
	}
	s.placedBuf = placed
	return placed
}

// strandDrops accounts instances still queued when the timeline dried up:
// only a pool that shrank for good (events, autoscale) strands work, and
// a stranded closed-loop instance strands the rest of its chain with it.
func (s *sched) strandDrops() {
	for w, ws := range s.wls {
		a := &ws.spec.Arrival
		stranded := 0
		for _, id := range s.queues[w][s.heads[w]:] {
			in := s.insts[id]
			n := 1
			if a.Process == ArrivalClosed && in.iter+1 < a.Iterations {
				n += a.Iterations - (in.iter + 1)
			}
			ws.dropped += n
			s.outstanding -= n
			stranded += n
		}
		if stranded > 0 {
			s.emitDropped(w, stranded, true)
		}
	}
}
