package scenario

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"synapse/internal/cluster"
)

// randomClusterSpec draws a bounded random scenario + cluster from rng:
// 1-3 workloads over the profiled commands, every arrival process, random
// caps, resources, policies and contention. All arrival counts are bounded
// so total arrivals are computable for the conservation check.
func randomClusterSpec(rng *rand.Rand) *Spec {
	policies := []string{
		cluster.PolicyFirstFit, cluster.PolicyBestFit,
		cluster.PolicyLeastLoaded, cluster.PolicyRandom,
	}
	machines := []string{"stampede", "comet", "thinkie"}
	contention := rng.Float64()
	spec := &Spec{
		Version:       SpecVersion,
		Name:          "property",
		Seed:          rng.Uint64(),
		MaxConcurrent: rng.Intn(4), // 0 = unlimited
		Cluster: &cluster.Spec{
			Policy:     policies[rng.Intn(len(policies))],
			Contention: &contention,
		},
	}
	if rng.Intn(3) == 0 {
		spec.Duration = Duration(time.Duration(1+rng.Intn(20)) * time.Second)
	}
	nodes := 1 + rng.Intn(3)
	for n := 0; n < nodes; n++ {
		spec.Cluster.Nodes = append(spec.Cluster.Nodes, cluster.NodeSpec{
			Name:    string(rune('a' + n)),
			Machine: machines[rng.Intn(len(machines))],
			Cores:   1 + rng.Intn(4),
		})
	}
	cmds := []string{"mdsim", "sleep"}
	tags := []map[string]string{mdTags, sleepTags}
	wls := 1 + rng.Intn(3)
	for i := 0; i < wls; i++ {
		pick := rng.Intn(len(cmds))
		w := Workload{
			Name:          string(rune('w'+0)) + string(rune('0'+i)),
			Profile:       ProfileRef{Command: cmds[pick], Tags: tags[pick]},
			MaxConcurrent: rng.Intn(3),
			Resources:     &Resources{Cores: 1}, // always fits the smallest node
		}
		if rng.Intn(2) == 0 {
			w.Emulation.Load = 0.3 * rng.Float64()
			w.Emulation.LoadJitter = 0.2 * rng.Float64()
		}
		switch rng.Intn(4) {
		case 0:
			w.Arrival = Arrival{Process: ArrivalClosed, Clients: 1 + rng.Intn(3), Iterations: 1 + rng.Intn(3)}
		case 1:
			w.Arrival = Arrival{Process: ArrivalPoisson, Rate: 0.1 + rng.Float64(), Count: 1 + rng.Intn(8)}
		case 2:
			w.Arrival = Arrival{Process: ArrivalConstant, Rate: 0.1 + rng.Float64(), Count: 1 + rng.Intn(8)}
		case 3:
			w.Arrival = Arrival{Process: ArrivalBurst, Burst: 1 + rng.Intn(4),
				Every: Duration(time.Duration(1+rng.Intn(4)) * time.Second), Bursts: 1 + rng.Intn(3)}
		}
		spec.Workloads = append(spec.Workloads, w)
	}
	return spec
}

// totalArrivals is the spec's total instance count, including everything
// the horizon may drop.
func totalArrivals(spec *Spec) int {
	total := 0
	for i := range spec.Workloads {
		a := &spec.Workloads[i].Arrival
		switch a.Process {
		case ArrivalClosed:
			total += a.Clients * a.Iterations
		case ArrivalPoisson, ArrivalConstant:
			total += a.Count
		case ArrivalBurst:
			total += a.Burst * a.Bursts
		}
	}
	return total
}

// TestPlacementProperties is the cluster engine's property test: across
// random (spec+cluster, seed) draws,
//
//   - determinism: worker counts 1, 4 and GOMAXPROCS produce byte-identical
//     reports;
//   - conservation: completed + dropped instances equal total arrivals, and
//     every completed instance was placed exactly once;
//   - capacity: no node's busy core-time exceeds makespan × cores, and no
//     node's peak occupancy exceeds its cores.
func TestPlacementProperties(t *testing.T) {
	st := seedStore(t, "mdsim", "sleep")
	trials := 20
	if testing.Short() {
		trials = 5
	}
	rng := rand.New(rand.NewSource(20260726))
	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	for trial := 0; trial < trials; trial++ {
		spec := randomClusterSpec(rng)
		if err := spec.Validate(); err != nil {
			t.Fatalf("trial %d: generated invalid spec: %v", trial, err)
		}
		var base []byte
		var rep *Report
		for _, workers := range workerCounts {
			r, err := Run(context.Background(), spec, st, RunOptions{Workers: workers})
			if err != nil {
				t.Fatalf("trial %d (workers %d): %v", trial, workers, err)
			}
			b := marshal(t, r)
			if base == nil {
				base, rep = b, r
			} else if !bytes.Equal(base, b) {
				t.Fatalf("trial %d: %d workers changed the report:\n%s\n---\n%s",
					trial, workers, base, b)
			}
		}

		// Conservation: placed + dropped == arrivals.
		if got, want := rep.Emulations+rep.Dropped, totalArrivals(spec); got != want {
			t.Errorf("trial %d: emulations %d + dropped %d = %d, want %d arrivals",
				trial, rep.Emulations, rep.Dropped, got, want)
		}
		if rep.Cluster == nil {
			t.Fatalf("trial %d: no cluster report", trial)
		}
		if rep.Cluster.Placements != rep.Emulations {
			t.Errorf("trial %d: placements %d != emulations %d",
				trial, rep.Cluster.Placements, rep.Emulations)
		}
		perNode := 0
		for _, n := range rep.Cluster.Nodes {
			perNode += n.Placed
			// Capacity: busy core-time within makespan × cores; peak
			// occupancy within the node.
			if limit := time.Duration(n.Cores) * rep.Makespan.D(); n.Busy.D() > limit {
				t.Errorf("trial %d node %s: busy %v exceeds %d cores × makespan %v",
					trial, n.Name, n.Busy, n.Cores, rep.Makespan)
			}
			if n.PeakCores > n.Cores {
				t.Errorf("trial %d node %s: peak %d exceeds %d cores",
					trial, n.Name, n.PeakCores, n.Cores)
			}
		}
		if perNode != rep.Cluster.Placements {
			t.Errorf("trial %d: per-node placed %d != placements %d",
				trial, perNode, rep.Cluster.Placements)
		}
	}
}

// randomEvents bolts a random fault/growth schedule onto a clustered
// spec: node failures, recoveries, drains and additions at random times,
// sometimes an autoscale rule — the adversarial input for the
// conservation invariant.
func randomEvents(rng *rand.Rand, spec *Spec) {
	ev := &Events{Version: EventsVersion}
	// Only initial nodes are event targets: an added node exists from
	// its add time on, and random times cannot promise that ordering.
	var names []string
	for i := range spec.Cluster.Nodes {
		names = append(names, cluster.ExpandNames(spec.Cluster.Nodes[i])...)
	}
	machines := []string{"stampede", "comet", "thinkie"}
	n := 1 + rng.Intn(4)
	for i := 0; i < n; i++ {
		at := Duration(time.Duration(rng.Intn(8000)) * time.Millisecond)
		switch rng.Intn(5) {
		case 0, 1: // failures dominate: they exercise kill-and-retry
			ev.Timeline = append(ev.Timeline, ClusterEvent{
				At: at, Kind: EventNodeDown, Node: names[rng.Intn(len(names))]})
		case 2:
			ev.Timeline = append(ev.Timeline, ClusterEvent{
				At: at, Kind: EventNodeUp, Node: names[rng.Intn(len(names))]})
		case 3:
			ev.Timeline = append(ev.Timeline, ClusterEvent{
				At: at, Kind: EventNodeDrain, Node: names[rng.Intn(len(names))]})
		case 4:
			name := fmt.Sprintf("x%d", i)
			ev.Timeline = append(ev.Timeline, ClusterEvent{
				At: at, Kind: EventAddNodes,
				Add: &cluster.NodeSpec{Name: name, Machine: machines[rng.Intn(len(machines))],
					Cores: 1 + rng.Intn(4)}})
		}
	}
	if rng.Intn(2) == 0 {
		ev.Autoscale = &Autoscale{
			CheckEvery: Duration(time.Duration(500+rng.Intn(2000)) * time.Millisecond),
			QueueHigh:  1 + rng.Intn(4),
			Add:        cluster.NodeSpec{Name: "as", Machine: machines[rng.Intn(len(machines))], Cores: 1 + rng.Intn(2)},
			MaxNodes:   4 + rng.Intn(4),
		}
	}
	spec.Events = ev
}

// TestFaultInjectionProperties is the dynamic-cluster property test:
// across random (spec+cluster+events, seed) draws,
//
//   - determinism: worker counts 1, 4 and GOMAXPROCS produce byte-identical
//     reports even with failures, retries and autoscaling in play;
//   - conservation: completed + dropped instances equal total arrivals —
//     kill-and-retry loses nothing, stranding accounts everything — and
//     every placement ends in exactly one completion or one kill
//     (placements = emulations + killed);
//   - accounting: per-node placed and killed sum to the cluster totals,
//     and no node's peak occupancy exceeds its cores.
func TestFaultInjectionProperties(t *testing.T) {
	st := seedStore(t, "mdsim", "sleep")
	trials := 20
	if testing.Short() {
		trials = 5
	}
	rng := rand.New(rand.NewSource(20260726))
	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	for trial := 0; trial < trials; trial++ {
		spec := randomClusterSpec(rng)
		randomEvents(rng, spec)
		if err := spec.Validate(); err != nil {
			t.Fatalf("trial %d: generated invalid spec: %v", trial, err)
		}
		var base []byte
		var rep *Report
		for _, workers := range workerCounts {
			r, err := Run(context.Background(), spec, st, RunOptions{Workers: workers})
			if err != nil {
				t.Fatalf("trial %d (workers %d): %v", trial, workers, err)
			}
			b := marshal(t, r)
			if base == nil {
				base, rep = b, r
			} else if !bytes.Equal(base, b) {
				t.Fatalf("trial %d: %d workers changed the report under fault injection:\n%s\n---\n%s",
					trial, workers, base, b)
			}
		}

		if got, want := rep.Emulations+rep.Dropped, totalArrivals(spec); got != want {
			t.Errorf("trial %d: emulations %d + dropped %d = %d, want %d arrivals\nspec: %s",
				trial, rep.Emulations, rep.Dropped, got, want, marshal(t, rep))
		}
		cr := rep.Cluster
		if cr.Placements != rep.Emulations+rep.Killed {
			t.Errorf("trial %d: placements %d != emulations %d + killed %d",
				trial, cr.Placements, rep.Emulations, rep.Killed)
		}
		perNode, killedPerNode := 0, 0
		for _, n := range cr.Nodes {
			perNode += n.Placed
			killedPerNode += n.Killed
			if n.PeakCores > n.Cores {
				t.Errorf("trial %d node %s: peak %d exceeds %d cores", trial, n.Name, n.PeakCores, n.Cores)
			}
			if n.Busy < 0 {
				t.Errorf("trial %d node %s: negative busy %v", trial, n.Name, n.Busy)
			}
		}
		if perNode != cr.Placements {
			t.Errorf("trial %d: per-node placed %d != placements %d", trial, perNode, cr.Placements)
		}
		if killedPerNode != rep.Killed {
			t.Errorf("trial %d: per-node killed %d != killed %d", trial, killedPerNode, rep.Killed)
		}
		perW := 0
		for _, wr := range rep.Workloads {
			perW += wr.Killed
		}
		if perW != rep.Killed {
			t.Errorf("trial %d: per-workload killed %d != killed %d", trial, perW, rep.Killed)
		}
	}
}

// TestUnclusteredDeterminismProperty extends the same determinism sweep to
// specs without a cluster block (the eager execution path), guarding the
// scheduler's per-instant batching refactor.
func TestUnclusteredDeterminismProperty(t *testing.T) {
	st := seedStore(t, "mdsim", "sleep")
	rng := rand.New(rand.NewSource(42))
	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	for trial := 0; trial < 5; trial++ {
		spec := randomClusterSpec(rng)
		spec.Cluster = nil
		for i := range spec.Workloads {
			spec.Workloads[i].Resources = nil
		}
		var base []byte
		for _, workers := range workerCounts {
			r, err := Run(context.Background(), spec, st, RunOptions{Workers: workers})
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			b := marshal(t, r)
			if base == nil {
				base = b
			} else if !bytes.Equal(base, b) {
				t.Fatalf("trial %d: unclustered report changed with workers:\n%s\n---\n%s",
					trial, base, b)
			}
		}
	}
}
