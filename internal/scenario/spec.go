package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"synapse/internal/cluster"
)

// SpecVersion is the scenario spec schema version this build understands.
const SpecVersion = 1

// Duration is a time.Duration that marshals as a Go duration string
// ("1.5s", "200ms") and additionally decodes bare JSON numbers as seconds,
// so hand-written specs can say either "duration": "90s" or "duration": 90.
type Duration time.Duration

// D returns the wrapped time.Duration.
func (d Duration) D() time.Duration { return time.Duration(d) }

// String formats like time.Duration.
func (d Duration) String() string { return time.Duration(d).String() }

// MarshalJSON implements json.Marshaler.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON implements json.Unmarshaler.
func (d *Duration) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		td, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("scenario: bad duration %q: %w", s, err)
		}
		*d = Duration(td)
		return nil
	}
	var secs float64
	if err := json.Unmarshal(b, &secs); err != nil {
		return fmt.Errorf("scenario: duration must be a string or seconds: %w", err)
	}
	*d = Duration(time.Duration(secs * float64(time.Second)))
	return nil
}

// Spec is a declarative workload mix: which profiles run, how instances of
// each arrive over virtual time, and what resources bound them. Specs are
// versioned JSON, loadable from a file (Load), raw bytes (Parse), or built
// directly in Go.
type Spec struct {
	// Version is the schema version; must equal SpecVersion.
	Version int `json:"version"`
	// Name labels the scenario in reports.
	Name string `json:"name,omitempty"`
	// Seed bases every random draw in the scenario (arrival processes,
	// per-instance load jitter). The same spec with the same seed
	// produces a byte-identical report.
	Seed uint64 `json:"seed,omitempty"`
	// Duration bounds the scenario's virtual time: arrivals after the
	// horizon are dropped (admitted work still runs to completion).
	// Zero means unbounded — every workload must then bound itself by
	// count or iterations.
	Duration Duration `json:"duration,omitempty"`
	// MaxConcurrent caps concurrently-running emulations across all
	// workloads (the shared resource's slot count). Zero = unlimited.
	MaxConcurrent int `json:"max_concurrent,omitempty"`
	// Cluster, when present, replaces the infinitely wide machine with a
	// finite pool of nodes: instances are placed by the cluster's policy
	// (queueing when no node fits), replay on the machine of the node
	// they land on, and slow down with colocation via the contention
	// model. Without it, every instance runs on the workload's own
	// emulation machine as before.
	Cluster *cluster.Spec `json:"cluster,omitempty"`
	// Workloads are the mix components, scheduled together.
	Workloads []Workload `json:"workloads"`
}

// Workload is one component of the mix: a stored profile, an arrival
// process generating emulation instances, and per-workload emulation
// options and limits.
type Workload struct {
	// Name identifies the workload in reports; unique within the spec.
	Name string `json:"name"`
	// Profile locates the profile in the store (command + tags, the
	// store's native key).
	Profile ProfileRef `json:"profile"`
	// Arrival describes how instances arrive over virtual time.
	Arrival Arrival `json:"arrival"`
	// MaxConcurrent caps this workload's concurrently-running instances,
	// inside the scenario-wide cap. Zero = unlimited.
	MaxConcurrent int `json:"max_concurrent,omitempty"`
	// Resources is each instance's demand on a cluster node. It is inert
	// without a cluster — specs may carry it and gain a pool later (e.g.
	// synapse-sim -cluster).
	Resources *Resources `json:"resources,omitempty"`
	// Emulation tunes how each instance replays.
	Emulation Emulation `json:"emulation,omitempty"`
}

// Resources is one instance's demand on the node that hosts it.
type Resources struct {
	// Cores is the core count an instance occupies while running; 0
	// defaults to the emulation worker count (at least 1).
	Cores int `json:"cores,omitempty"`
	// MemGB is the memory an instance reserves; 0 reserves none.
	MemGB float64 `json:"mem_gb,omitempty"`
}

// ProfileRef names a stored profile.
type ProfileRef struct {
	Command string            `json:"command"`
	Tags    map[string]string `json:"tags,omitempty"`
}

// Arrival processes supported by the scheduler.
const (
	// ArrivalClosed is a closed loop: Clients concurrent clients, each
	// issuing its next instance the moment the previous one completes,
	// Iterations times.
	ArrivalClosed = "closed"
	// ArrivalPoisson is an open loop with exponentially distributed
	// inter-arrival times at Rate per second.
	ArrivalPoisson = "poisson"
	// ArrivalConstant is an open loop with fixed inter-arrival times
	// (1/Rate seconds).
	ArrivalConstant = "constant"
	// ArrivalBurst releases Burst instances at once every Every, Bursts
	// times — a ramp of load spikes.
	ArrivalBurst = "burst"
)

// Arrival configures a workload's arrival process.
type Arrival struct {
	// Process is one of the Arrival* constants.
	Process string `json:"process"`
	// Clients and Iterations configure the closed loop.
	Clients    int `json:"clients,omitempty"`
	Iterations int `json:"iterations,omitempty"`
	// Rate (per second) drives the poisson and constant processes; Count
	// bounds their total arrivals (0 = bounded by the scenario duration).
	Rate  float64 `json:"rate,omitempty"`
	Count int     `json:"count,omitempty"`
	// Burst/Every/Bursts configure the burst process (Bursts 0 = bounded
	// by the scenario duration).
	Burst  int      `json:"burst,omitempty"`
	Every  Duration `json:"every,omitempty"`
	Bursts int      `json:"bursts,omitempty"`
}

// Emulation carries the per-workload replay options — the subset of the
// library's emulation knobs that matter for mixes.
type Emulation struct {
	// Machine is the emulation resource; empty replays on the machine
	// the profile was taken on.
	Machine string `json:"machine,omitempty"`
	// Kernel selects the compute kernel ("asm" when empty).
	Kernel string `json:"kernel,omitempty"`
	// Load adds artificial background CPU load in [0, 1).
	Load float64 `json:"load,omitempty"`
	// LoadJitter perturbs Load per instance, uniformly in ±LoadJitter
	// (clamped at 0; Load+LoadJitter must stay below 1) — run-to-run
	// variation inside one mix.
	LoadJitter float64 `json:"load_jitter,omitempty"`
	// Workers/Mode inject OpenMP- or MPI-style parallelism; Mode is
	// "serial", "openmp" or "mpi".
	Workers int    `json:"workers,omitempty"`
	Mode    string `json:"mode,omitempty"`
	// DisableAtoms turns off the named atoms ("storage", "memory",
	// "network") for this workload.
	DisableAtoms []string `json:"disable_atoms,omitempty"`
}

// request is the workload's per-instance resource demand on a cluster node:
// the resources block, defaulting cores to the emulation worker count (at
// least one core — an instance always occupies something).
func (w *Workload) request() cluster.Request {
	cores := 0
	var mem int64
	if w.Resources != nil {
		cores = w.Resources.Cores
		mem = int64(w.Resources.MemGB * float64(1<<30))
	}
	if cores == 0 {
		cores = w.Emulation.Workers
	}
	if cores < 1 {
		cores = 1
	}
	return cluster.Request{Cores: cores, MemBytes: mem}
}

// Parse decodes and validates a JSON scenario spec. Unknown fields are
// rejected — a misspelled knob in a declarative spec should fail loudly,
// not silently fall back to a default.
func Parse(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: parse spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Load reads and parses a scenario spec file.
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: read spec: %w", err)
	}
	return Parse(data)
}

// Validate reports the first structural problem with the spec.
func (s *Spec) Validate() error {
	if s.Version != SpecVersion {
		return fmt.Errorf("scenario: unknown spec version %d (this build supports version %d)", s.Version, SpecVersion)
	}
	if s.Duration < 0 {
		return fmt.Errorf("scenario: negative duration %v", s.Duration)
	}
	if s.MaxConcurrent < 0 {
		return fmt.Errorf("scenario: negative max_concurrent %d", s.MaxConcurrent)
	}
	if len(s.Workloads) == 0 {
		return fmt.Errorf("scenario: no workloads")
	}
	if s.Cluster != nil {
		if err := s.Cluster.Validate(); err != nil {
			return fmt.Errorf("scenario: %w", err)
		}
	}
	seen := make(map[string]bool, len(s.Workloads))
	for i := range s.Workloads {
		w := &s.Workloads[i]
		if w.Name == "" {
			return fmt.Errorf("scenario: workload %d has no name", i)
		}
		if seen[w.Name] {
			return fmt.Errorf("scenario: duplicate workload name %q", w.Name)
		}
		seen[w.Name] = true
		if err := w.validate(s.Duration > 0, s.Cluster != nil); err != nil {
			return fmt.Errorf("scenario: workload %q: %w", w.Name, err)
		}
	}
	return nil
}

func (w *Workload) validate(hasHorizon, hasCluster bool) error {
	if w.Profile.Command == "" {
		return fmt.Errorf("missing profile command")
	}
	if w.MaxConcurrent < 0 {
		return fmt.Errorf("negative max_concurrent %d", w.MaxConcurrent)
	}
	a := &w.Arrival
	switch a.Process {
	case ArrivalClosed:
		if a.Clients < 1 {
			return fmt.Errorf("closed loop needs clients >= 1, got %d", a.Clients)
		}
		if a.Iterations < 1 {
			return fmt.Errorf("closed loop needs iterations >= 1, got %d", a.Iterations)
		}
	case ArrivalPoisson, ArrivalConstant:
		if a.Rate <= 0 {
			return fmt.Errorf("%s arrivals need a positive rate, got %g", a.Process, a.Rate)
		}
		if a.Count < 0 {
			return fmt.Errorf("negative count %d", a.Count)
		}
		if a.Count == 0 && !hasHorizon {
			return fmt.Errorf("%s arrivals need a count or a scenario duration", a.Process)
		}
	case ArrivalBurst:
		if a.Burst < 1 {
			return fmt.Errorf("burst arrivals need burst >= 1, got %d", a.Burst)
		}
		if a.Every <= 0 {
			return fmt.Errorf("burst arrivals need a positive every, got %v", a.Every)
		}
		if a.Bursts < 0 {
			return fmt.Errorf("negative bursts %d", a.Bursts)
		}
		if a.Bursts == 0 && !hasHorizon {
			return fmt.Errorf("burst arrivals need bursts or a scenario duration")
		}
	case "":
		return fmt.Errorf("missing arrival process")
	default:
		return fmt.Errorf("unknown arrival process %q", a.Process)
	}
	if r := w.Resources; r != nil {
		if r.Cores < 0 {
			return fmt.Errorf("negative resources.cores %d", r.Cores)
		}
		if r.MemGB < 0 || r.MemGB >= cluster.MaxMemGB {
			return fmt.Errorf("resources.mem_gb %g outside [0, %g)", r.MemGB, float64(cluster.MaxMemGB))
		}
	}
	e := &w.Emulation
	if hasCluster && e.Machine != "" {
		return fmt.Errorf("emulation.machine %q conflicts with the cluster block (the node's machine decides)", e.Machine)
	}
	if e.Load < 0 || e.Load >= 1 {
		return fmt.Errorf("load %g outside [0, 1)", e.Load)
	}
	if e.LoadJitter < 0 || e.LoadJitter >= 1 {
		return fmt.Errorf("load_jitter %g outside [0, 1)", e.LoadJitter)
	}
	if e.Load+e.LoadJitter >= 1 {
		return fmt.Errorf("load %g + load_jitter %g must stay below 1", e.Load, e.LoadJitter)
	}
	if e.Workers < 0 {
		return fmt.Errorf("negative workers %d", e.Workers)
	}
	switch e.Mode {
	case "", "serial", "openmp", "mpi":
	default:
		return fmt.Errorf("unknown mode %q (serial, openmp, mpi)", e.Mode)
	}
	for _, a := range e.DisableAtoms {
		switch a {
		case "storage", "memory", "network":
		default:
			return fmt.Errorf("unknown atom %q in disable_atoms (storage, memory, network)", a)
		}
	}
	return nil
}
