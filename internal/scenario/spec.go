package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"synapse/internal/cluster"
)

// SpecVersion is the scenario spec schema version this build understands.
const SpecVersion = 1

// EventsVersion is the events block schema version this build understands.
// The block is versioned independently of the spec so event semantics can
// evolve without forcing a spec-wide version bump.
const EventsVersion = 1

// Duration is a time.Duration that marshals as a Go duration string
// ("1.5s", "200ms") and additionally decodes bare JSON numbers as seconds,
// so hand-written specs can say either "duration": "90s" or "duration": 90.
type Duration time.Duration

// D returns the wrapped time.Duration.
func (d Duration) D() time.Duration { return time.Duration(d) }

// String formats like time.Duration.
func (d Duration) String() string { return time.Duration(d).String() }

// MarshalJSON implements json.Marshaler.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON implements json.Unmarshaler.
func (d *Duration) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		td, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("scenario: bad duration %q: %w", s, err)
		}
		*d = Duration(td)
		return nil
	}
	var secs float64
	if err := json.Unmarshal(b, &secs); err != nil {
		return fmt.Errorf("scenario: duration must be a string or seconds: %w", err)
	}
	*d = Duration(time.Duration(secs * float64(time.Second)))
	return nil
}

// Spec is a declarative workload mix: which profiles run, how instances of
// each arrive over virtual time, and what resources bound them. Specs are
// versioned JSON, loadable from a file (Load), raw bytes (Parse), or built
// directly in Go.
type Spec struct {
	// Version is the schema version; must equal SpecVersion.
	Version int `json:"version"`
	// Name labels the scenario in reports.
	Name string `json:"name,omitempty"`
	// Seed bases every random draw in the scenario (arrival processes,
	// per-instance load jitter). The same spec with the same seed
	// produces a byte-identical report.
	Seed uint64 `json:"seed,omitempty"`
	// Duration bounds the scenario's virtual time: arrivals after the
	// horizon are dropped (admitted work still runs to completion).
	// Zero means unbounded — every workload must then bound itself by
	// count or iterations.
	Duration Duration `json:"duration,omitempty"`
	// MaxConcurrent caps concurrently-running emulations across all
	// workloads (the shared resource's slot count). Zero = unlimited.
	MaxConcurrent int `json:"max_concurrent,omitempty"`
	// Cluster, when present, replaces the infinitely wide machine with a
	// finite pool of nodes: instances are placed by the cluster's policy
	// (queueing when no node fits), replay on the machine of the node
	// they land on, and slow down with colocation via the contention
	// model. Without it, every instance runs on the workload's own
	// emulation machine as before.
	Cluster *cluster.Spec `json:"cluster,omitempty"`
	// Events, when present, mutates the cluster mid-run: a timeline of
	// node failures, recoveries, drains and additions, plus an optional
	// queue-threshold autoscale rule. Requires a cluster block.
	Events *Events `json:"events,omitempty"`
	// Timeline, when present, adds a time-series view to the report:
	// fixed-width buckets of throughput, queue depth and per-node
	// occupancy (Report.Timeline, synapse-sim -timeline).
	Timeline *TimelineSpec `json:"timeline,omitempty"`
	// Workloads are the mix components, scheduled together.
	Workloads []Workload `json:"workloads"`
}

// Events is the versioned dynamic-cluster block: what the static pool
// description cannot express — the pool changing underneath the mix.
type Events struct {
	// Version is the events schema version; must equal EventsVersion.
	Version int `json:"version"`
	// Timeline is the list of scheduled pool mutations. Events at the
	// same virtual time apply in list order; all of them apply before
	// that instant's placement decisions.
	Timeline []ClusterEvent `json:"timeline,omitempty"`
	// Autoscale, when present, grows and shrinks the pool from queue
	// pressure instead of a fixed schedule.
	Autoscale *Autoscale `json:"autoscale,omitempty"`
}

// Cluster event kinds.
const (
	// EventNodeDown takes a node out of the pool; instances running on it
	// are killed and re-queued (kill-and-retry), keeping their original
	// arrival time.
	EventNodeDown = "node_down"
	// EventNodeUp returns a down or draining node to the pool.
	EventNodeUp = "node_up"
	// EventNodeDrain stops new placements on a node; running instances
	// finish normally.
	EventNodeDrain = "node_drain"
	// EventAddNodes expands the pool with new nodes mid-run.
	EventAddNodes = "add_nodes"
)

// ClusterEvent is one scheduled pool mutation.
type ClusterEvent struct {
	// At is the virtual time the event fires.
	At Duration `json:"at"`
	// Kind is one of the Event* constants.
	Kind string `json:"kind"`
	// Node names the target node for node_down/node_up/node_drain (the
	// expanded node name, e.g. "big-1" for a count-expanded spec).
	Node string `json:"node,omitempty"`
	// Add describes the nodes an add_nodes event appends, in the same
	// format (and with the same count expansion and naming) as the
	// cluster block's nodes.
	Add *cluster.NodeSpec `json:"add,omitempty"`
}

// Autoscale grows the pool when the queue backs up and shrinks it when
// the queue empties. The rule is evaluated every CheckEvery of virtual
// time: with QueueHigh or more instances queued, Add's nodes join the
// pool (revived from earlier scale-downs before new ones are created,
// named add.name-0, add.name-1, ... — while MaxNodes, when set, bounds
// the live pool); with at most QueueLow queued, idle autoscaled nodes
// leave it. Everything derives from the virtual timeline, so autoscaled
// runs stay deterministic per (spec, seed).
type Autoscale struct {
	CheckEvery Duration `json:"check_every"`
	QueueHigh  int      `json:"queue_high"`
	QueueLow   int      `json:"queue_low,omitempty"`
	// Add is the node template one scale-up step appends; count is the
	// number of nodes per step (default 1).
	Add cluster.NodeSpec `json:"add"`
	// MaxNodes bounds live (non-down) nodes; 0 = unbounded.
	MaxNodes int `json:"max_nodes,omitempty"`
}

// TimelineSpec configures the report's time-series sink.
type TimelineSpec struct {
	// Bucket is the fixed bucket width; required, positive.
	Bucket Duration `json:"bucket"`
}

// Workload is one component of the mix: a stored profile, an arrival
// process generating emulation instances, and per-workload emulation
// options and limits.
type Workload struct {
	// Name identifies the workload in reports; unique within the spec.
	Name string `json:"name"`
	// Profile locates the profile in the store (command + tags, the
	// store's native key).
	Profile ProfileRef `json:"profile"`
	// Arrival describes how instances arrive over virtual time.
	Arrival Arrival `json:"arrival"`
	// MaxConcurrent caps this workload's concurrently-running instances,
	// inside the scenario-wide cap. Zero = unlimited.
	MaxConcurrent int `json:"max_concurrent,omitempty"`
	// Resources is each instance's demand on a cluster node. It is inert
	// without a cluster — specs may carry it and gain a pool later (e.g.
	// synapse-sim -cluster).
	Resources *Resources `json:"resources,omitempty"`
	// Emulation tunes how each instance replays.
	Emulation Emulation `json:"emulation,omitempty"`
}

// Resources is one instance's demand on the node that hosts it.
type Resources struct {
	// Cores is the core count an instance occupies while running; 0
	// defaults to the emulation worker count (at least 1).
	Cores int `json:"cores,omitempty"`
	// MemGB is the memory an instance reserves; 0 reserves none.
	MemGB float64 `json:"mem_gb,omitempty"`
}

// ProfileRef names a stored profile.
type ProfileRef struct {
	Command string            `json:"command"`
	Tags    map[string]string `json:"tags,omitempty"`
}

// Arrival processes supported by the scheduler.
const (
	// ArrivalClosed is a closed loop: Clients concurrent clients, each
	// issuing its next instance the moment the previous one completes,
	// Iterations times.
	ArrivalClosed = "closed"
	// ArrivalPoisson is an open loop with exponentially distributed
	// inter-arrival times at Rate per second.
	ArrivalPoisson = "poisson"
	// ArrivalConstant is an open loop with fixed inter-arrival times
	// (1/Rate seconds).
	ArrivalConstant = "constant"
	// ArrivalBurst releases Burst instances at once every Every, Bursts
	// times — a ramp of load spikes.
	ArrivalBurst = "burst"
)

// Arrival configures a workload's arrival process.
type Arrival struct {
	// Process is one of the Arrival* constants.
	Process string `json:"process"`
	// Clients and Iterations configure the closed loop.
	Clients    int `json:"clients,omitempty"`
	Iterations int `json:"iterations,omitempty"`
	// Rate (per second) drives the poisson and constant processes; Count
	// bounds their total arrivals (0 = bounded by the scenario duration).
	Rate  float64 `json:"rate,omitempty"`
	Count int     `json:"count,omitempty"`
	// Burst/Every/Bursts configure the burst process (Bursts 0 = bounded
	// by the scenario duration).
	Burst  int      `json:"burst,omitempty"`
	Every  Duration `json:"every,omitempty"`
	Bursts int      `json:"bursts,omitempty"`
}

// Emulation carries the per-workload replay options — the subset of the
// library's emulation knobs that matter for mixes.
type Emulation struct {
	// Machine is the emulation resource; empty replays on the machine
	// the profile was taken on.
	Machine string `json:"machine,omitempty"`
	// Kernel selects the compute kernel ("asm" when empty).
	Kernel string `json:"kernel,omitempty"`
	// Load adds artificial background CPU load in [0, 1).
	Load float64 `json:"load,omitempty"`
	// LoadJitter perturbs Load per instance, uniformly in ±LoadJitter
	// (clamped at 0; Load+LoadJitter must stay below 1) — run-to-run
	// variation inside one mix.
	LoadJitter float64 `json:"load_jitter,omitempty"`
	// Workers/Mode inject OpenMP- or MPI-style parallelism; Mode is
	// "serial", "openmp" or "mpi".
	Workers int    `json:"workers,omitempty"`
	Mode    string `json:"mode,omitempty"`
	// DisableAtoms turns off the named atoms ("storage", "memory",
	// "network") for this workload.
	DisableAtoms []string `json:"disable_atoms,omitempty"`
}

// request is the workload's per-instance resource demand on a cluster node:
// the resources block, defaulting cores to the emulation worker count (at
// least one core — an instance always occupies something).
func (w *Workload) request() cluster.Request {
	cores := 0
	var mem int64
	if w.Resources != nil {
		cores = w.Resources.Cores
		mem = int64(w.Resources.MemGB * float64(1<<30))
	}
	if cores == 0 {
		cores = w.Emulation.Workers
	}
	if cores < 1 {
		cores = 1
	}
	return cluster.Request{Cores: cores, MemBytes: mem}
}

// Parse decodes and validates a JSON scenario spec. Unknown fields are
// rejected — a misspelled knob in a declarative spec should fail loudly,
// not silently fall back to a default.
func Parse(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: parse spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Load reads and parses a scenario spec file.
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: read spec: %w", err)
	}
	return Parse(data)
}

// Validate reports the first structural problem with the spec.
func (s *Spec) Validate() error {
	if s.Version != SpecVersion {
		return fmt.Errorf("scenario: unknown spec version %d (this build supports version %d)", s.Version, SpecVersion)
	}
	if s.Duration < 0 {
		return fmt.Errorf("scenario: negative duration %v", s.Duration)
	}
	if s.MaxConcurrent < 0 {
		return fmt.Errorf("scenario: negative max_concurrent %d", s.MaxConcurrent)
	}
	if len(s.Workloads) == 0 {
		return fmt.Errorf("scenario: no workloads")
	}
	if s.Cluster != nil {
		if err := s.Cluster.Validate(); err != nil {
			return fmt.Errorf("scenario: %w", err)
		}
	}
	if s.Events != nil {
		if err := s.Events.validate(s.Cluster); err != nil {
			return fmt.Errorf("scenario: events: %w", err)
		}
	}
	if s.Timeline != nil && s.Timeline.Bucket <= 0 {
		return fmt.Errorf("scenario: timeline: bucket must be positive, got %v", s.Timeline.Bucket)
	}
	seen := make(map[string]bool, len(s.Workloads))
	for i := range s.Workloads {
		w := &s.Workloads[i]
		if w.Name == "" {
			return fmt.Errorf("scenario: workload %d has no name", i)
		}
		if seen[w.Name] {
			return fmt.Errorf("scenario: duplicate workload name %q", w.Name)
		}
		seen[w.Name] = true
		if err := w.validate(s.Duration > 0, s.Cluster != nil); err != nil {
			return fmt.Errorf("scenario: workload %q: %w", w.Name, err)
		}
	}
	return nil
}

// validate checks the events block against the cluster it mutates. Every
// timeline error is positional — "timeline[3]: ..." — so a bad entry in a
// long schedule is findable. Node targets are checked against the pool as
// it exists when the event fires: the initial nodes plus everything
// earlier add_nodes events (in (at, list order) order) have created.
func (e *Events) validate(cl *cluster.Spec) error {
	if e.Version != EventsVersion {
		return fmt.Errorf("unknown events version %d (this build supports version %d)", e.Version, EventsVersion)
	}
	if cl == nil {
		return fmt.Errorf("events need a cluster block to mutate")
	}
	names := make(map[string]bool)
	for i := range cl.Nodes {
		for _, n := range cluster.ExpandNames(cl.Nodes[i]) {
			names[n] = true
		}
	}
	// Walk events in the order they will apply: by time, list order
	// breaking ties — the same order the scheduler posts them in.
	order := make([]int, len(e.Timeline))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return e.Timeline[order[a]].At < e.Timeline[order[b]].At
	})
	for _, i := range order {
		ev := &e.Timeline[i]
		if ev.At < 0 {
			return fmt.Errorf("timeline[%d]: negative time %v", i, ev.At)
		}
		switch ev.Kind {
		case EventNodeDown, EventNodeUp, EventNodeDrain:
			if ev.Node == "" {
				return fmt.Errorf("timeline[%d]: %s needs a target node", i, ev.Kind)
			}
			if !names[ev.Node] {
				return fmt.Errorf("timeline[%d]: %s: unknown node %q", i, ev.Kind, ev.Node)
			}
			if ev.Add != nil {
				return fmt.Errorf("timeline[%d]: %s does not take an add block", i, ev.Kind)
			}
		case EventAddNodes:
			if ev.Node != "" {
				return fmt.Errorf("timeline[%d]: add_nodes does not take a target node", i)
			}
			if ev.Add == nil {
				return fmt.Errorf("timeline[%d]: add_nodes needs an add block", i)
			}
			if err := validateNodeSpec(ev.Add); err != nil {
				return fmt.Errorf("timeline[%d]: add_nodes: %w", i, err)
			}
			for _, n := range cluster.ExpandNames(*ev.Add) {
				if names[n] {
					return fmt.Errorf("timeline[%d]: add_nodes: duplicate node name %q", i, n)
				}
				names[n] = true
			}
		case "":
			return fmt.Errorf("timeline[%d]: missing event kind", i)
		default:
			return fmt.Errorf("timeline[%d]: unknown event kind %q (node_down, node_up, node_drain, add_nodes)", i, ev.Kind)
		}
	}
	if a := e.Autoscale; a != nil {
		if a.CheckEvery <= 0 {
			return fmt.Errorf("autoscale: check_every must be positive, got %v", a.CheckEvery)
		}
		if a.QueueHigh < 1 {
			return fmt.Errorf("autoscale: queue_high must be >= 1, got %d", a.QueueHigh)
		}
		if a.QueueLow < 0 || a.QueueLow >= a.QueueHigh {
			return fmt.Errorf("autoscale: queue_low %d outside [0, queue_high %d)", a.QueueLow, a.QueueHigh)
		}
		if err := validateNodeSpec(&a.Add); err != nil {
			return fmt.Errorf("autoscale: add: %w", err)
		}
		if a.MaxNodes < 0 {
			return fmt.Errorf("autoscale: negative max_nodes %d", a.MaxNodes)
		}
		// Autoscaled nodes are named base-0, base-1, ... as pressure
		// demands; a static node squatting on that pattern would only
		// collide (and abort the run) when the rule first fires, on a
		// load- and seed-dependent path — reject it up front instead.
		base := a.Add.Name
		if base == "" {
			base = a.Add.Machine
		}
		for name := range names {
			if rest, ok := strings.CutPrefix(name, base+"-"); ok && isDigits(rest) {
				return fmt.Errorf("autoscale: add name %q collides with node %q (autoscale owns %s-0, %s-1, ...)",
					base, name, base, base)
			}
		}
	}
	return nil
}

// isDigits reports whether s is a non-empty run of ASCII digits.
func isDigits(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if r < '0' || r > '9' {
			return false
		}
	}
	return true
}

// validateNodeSpec checks a node template's structure (the machine
// reference resolves later, at compile, where the cluster's inline models
// are in scope).
func validateNodeSpec(ns *cluster.NodeSpec) error {
	if ns.Machine == "" {
		return fmt.Errorf("missing machine")
	}
	if ns.Count < 0 {
		return fmt.Errorf("negative count %d", ns.Count)
	}
	if ns.Cores < 0 {
		return fmt.Errorf("negative cores %d", ns.Cores)
	}
	if ns.MemGB < 0 || ns.MemGB >= cluster.MaxMemGB {
		return fmt.Errorf("mem_gb %g outside [0, %g)", ns.MemGB, float64(cluster.MaxMemGB))
	}
	return nil
}

func (w *Workload) validate(hasHorizon, hasCluster bool) error {
	if w.Profile.Command == "" {
		return fmt.Errorf("missing profile command")
	}
	if w.MaxConcurrent < 0 {
		return fmt.Errorf("negative max_concurrent %d", w.MaxConcurrent)
	}
	a := &w.Arrival
	switch a.Process {
	case ArrivalClosed:
		if a.Clients < 1 {
			return fmt.Errorf("closed loop needs clients >= 1, got %d", a.Clients)
		}
		if a.Iterations < 1 {
			return fmt.Errorf("closed loop needs iterations >= 1, got %d", a.Iterations)
		}
	case ArrivalPoisson, ArrivalConstant:
		if a.Rate <= 0 {
			return fmt.Errorf("%s arrivals need a positive rate, got %g", a.Process, a.Rate)
		}
		if a.Count < 0 {
			return fmt.Errorf("negative count %d", a.Count)
		}
		if a.Count == 0 && !hasHorizon {
			return fmt.Errorf("%s arrivals need a count or a scenario duration", a.Process)
		}
	case ArrivalBurst:
		if a.Burst < 1 {
			return fmt.Errorf("burst arrivals need burst >= 1, got %d", a.Burst)
		}
		if a.Every <= 0 {
			return fmt.Errorf("burst arrivals need a positive every, got %v", a.Every)
		}
		if a.Bursts < 0 {
			return fmt.Errorf("negative bursts %d", a.Bursts)
		}
		if a.Bursts == 0 && !hasHorizon {
			return fmt.Errorf("burst arrivals need bursts or a scenario duration")
		}
	case "":
		return fmt.Errorf("missing arrival process")
	default:
		return fmt.Errorf("unknown arrival process %q", a.Process)
	}
	if r := w.Resources; r != nil {
		if r.Cores < 0 {
			return fmt.Errorf("negative resources.cores %d", r.Cores)
		}
		if r.MemGB < 0 || r.MemGB >= cluster.MaxMemGB {
			return fmt.Errorf("resources.mem_gb %g outside [0, %g)", r.MemGB, float64(cluster.MaxMemGB))
		}
	}
	e := &w.Emulation
	if hasCluster && e.Machine != "" {
		return fmt.Errorf("emulation.machine %q conflicts with the cluster block (the node's machine decides)", e.Machine)
	}
	if e.Load < 0 || e.Load >= 1 {
		return fmt.Errorf("load %g outside [0, 1)", e.Load)
	}
	if e.LoadJitter < 0 || e.LoadJitter >= 1 {
		return fmt.Errorf("load_jitter %g outside [0, 1)", e.LoadJitter)
	}
	if e.Load+e.LoadJitter >= 1 {
		return fmt.Errorf("load %g + load_jitter %g must stay below 1", e.Load, e.LoadJitter)
	}
	if e.Workers < 0 {
		return fmt.Errorf("negative workers %d", e.Workers)
	}
	switch e.Mode {
	case "", "serial", "openmp", "mpi":
	default:
		return fmt.Errorf("unknown mode %q (serial, openmp, mpi)", e.Mode)
	}
	for _, a := range e.DisableAtoms {
		switch a {
		case "storage", "memory", "network":
		default:
			return fmt.Errorf("unknown atom %q in disable_atoms (storage, memory, network)", a)
		}
	}
	return nil
}
