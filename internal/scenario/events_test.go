package scenario

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"synapse/internal/cluster"
)

// eventSpec is a two-node mix whose first node fails mid-run: both md
// instances land on "a" (first_fit), die with it at 500ms, and retry on
// "b".
func eventSpec() *Spec {
	noContention := 0.0
	return &Spec{
		Version: SpecVersion,
		Name:    "failover",
		Seed:    42,
		Cluster: &cluster.Spec{
			Policy:     cluster.PolicyFirstFit,
			Contention: &noContention,
			Nodes: []cluster.NodeSpec{
				{Name: "a", Machine: "stampede", Cores: 4},
				{Name: "b", Machine: "stampede", Cores: 4},
			},
		},
		Events: &Events{
			Version: EventsVersion,
			Timeline: []ClusterEvent{
				{At: Duration(500 * time.Millisecond), Kind: EventNodeDown, Node: "a"},
				{At: Duration(10 * time.Second), Kind: EventNodeUp, Node: "a"},
			},
		},
		Workloads: []Workload{{
			Name:      "md",
			Profile:   ProfileRef{Command: "mdsim", Tags: mdTags},
			Arrival:   Arrival{Process: ArrivalBurst, Burst: 2, Every: Duration(time.Second), Bursts: 1},
			Resources: &Resources{Cores: 2},
		}},
	}
}

// TestNodeDownKillsAndRetries: a failing node's instances are killed,
// re-queued, and complete on the surviving node; nothing is lost.
func TestNodeDownKillsAndRetries(t *testing.T) {
	rep := runReport(t, eventSpec(), 0)
	if rep.Emulations != 2 {
		t.Fatalf("emulations = %d, want 2 (kill-and-retry must not lose work)", rep.Emulations)
	}
	if rep.Killed != 2 {
		t.Fatalf("killed = %d, want 2 (both ran on the failed node)", rep.Killed)
	}
	if rep.Dropped != 0 {
		t.Fatalf("dropped = %d, want 0", rep.Dropped)
	}
	cr := rep.Cluster
	if cr.Placements != rep.Emulations+rep.Killed {
		t.Fatalf("placements %d != emulations %d + killed %d", cr.Placements, rep.Emulations, rep.Killed)
	}
	if cr.Events != 2 {
		t.Fatalf("events_applied = %d, want 2", cr.Events)
	}
	var a, b NodeReport
	for _, n := range cr.Nodes {
		if n.Name == "a" {
			a = n
		} else {
			b = n
		}
	}
	if a.Killed != 2 || a.Placed != 2 {
		t.Fatalf("failed node a = %+v, want 2 placed / 2 killed", a)
	}
	// The node came back at 10s (after the retries completed) — final
	// state up, reported as empty.
	if a.State != "" {
		t.Fatalf("node a final state = %q, want up (omitted)", a.State)
	}
	if b.Placed != 2 || b.Killed != 0 {
		t.Fatalf("survivor node b = %+v, want 2 placed / 0 killed", b)
	}
	// Retried sojourn covers the lost partial service: latency exceeds
	// one service time by at least the 500ms spent on the dead node.
	wr := rep.Workloads[0]
	if wr.Killed != 2 {
		t.Fatalf("workload killed = %d, want 2", wr.Killed)
	}
	if wr.Latency.Max.D() < wr.Service.Max.D()+500*time.Millisecond {
		t.Fatalf("latency max %v does not cover the lost 500ms before service %v", wr.Latency.Max, wr.Service.Max)
	}
}

// TestNodeDownStrandsWithoutCapacity: killing the only node with no
// recovery strands the retries; they are accounted as dropped, not lost.
func TestNodeDownStrandsWithoutCapacity(t *testing.T) {
	spec := eventSpec()
	spec.Cluster.Nodes = spec.Cluster.Nodes[:1] // only node "a"
	spec.Events.Timeline = spec.Events.Timeline[:1]
	rep := runReport(t, spec, 0)
	if rep.Emulations != 0 || rep.Killed != 2 || rep.Dropped != 2 {
		t.Fatalf("emulations/killed/dropped = %d/%d/%d, want 0/2/2", rep.Emulations, rep.Killed, rep.Dropped)
	}
	if rep.Cluster.Nodes[0].State != cluster.StateDown {
		t.Fatalf("node state = %q, want down", rep.Cluster.Nodes[0].State)
	}
}

// TestNodeDownCutsStrandedClosedChains: a stranded closed-loop instance
// drops the rest of its chain with it, keeping conservation exact.
func TestNodeDownCutsStrandedClosedChains(t *testing.T) {
	spec := eventSpec()
	spec.Cluster.Nodes = spec.Cluster.Nodes[:1]
	spec.Events.Timeline = spec.Events.Timeline[:1]
	spec.Workloads[0].Arrival = Arrival{Process: ArrivalClosed, Clients: 1, Iterations: 5}
	rep := runReport(t, spec, 0)
	if got := rep.Emulations + rep.Dropped; got != 5 {
		t.Fatalf("emulations %d + dropped %d = %d, want 5 (chain must drop with its stranded head)",
			rep.Emulations, rep.Dropped, got)
	}
	if rep.Killed != 1 {
		t.Fatalf("killed = %d, want 1 (only the first iteration ever ran)", rep.Killed)
	}
}

// TestNodeDrainFinishesRunning: draining refuses new placements but lets
// running instances finish — no kills, and the drained node takes nothing
// after the drain point.
func TestNodeDrainFinishesRunning(t *testing.T) {
	spec := eventSpec()
	spec.Events.Timeline = []ClusterEvent{
		{At: Duration(500 * time.Millisecond), Kind: EventNodeDrain, Node: "a"},
	}
	// A second burst arrives after the drain: it must all land on "b".
	spec.Workloads[0].Arrival.Bursts = 2
	rep := runReport(t, spec, 0)
	if rep.Killed != 0 {
		t.Fatalf("drain killed %d instances", rep.Killed)
	}
	if rep.Emulations != 4 {
		t.Fatalf("emulations = %d, want 4", rep.Emulations)
	}
	for _, n := range rep.Cluster.Nodes {
		switch n.Name {
		case "a":
			if n.Placed != 2 || n.State != cluster.StateDraining {
				t.Fatalf("drained node = %+v, want 2 placed, draining", n)
			}
		case "b":
			if n.Placed != 2 {
				t.Fatalf("survivor = %+v, want 2 placed", n)
			}
		}
	}
}

// TestAddNodesEnablesWideWorkload: a request too wide for every initial
// node compiles (an event will add a node it fits) and waits for that
// node to join.
func TestAddNodesEnablesWideWorkload(t *testing.T) {
	noContention := 0.0
	spec := &Spec{
		Version: SpecVersion,
		Name:    "grow",
		Cluster: &cluster.Spec{
			Contention: &noContention,
			Nodes:      []cluster.NodeSpec{{Name: "small", Machine: "stampede", Cores: 1}},
		},
		Events: &Events{
			Version: EventsVersion,
			Timeline: []ClusterEvent{
				{At: Duration(2 * time.Second), Kind: EventAddNodes,
					Add: &cluster.NodeSpec{Name: "big", Machine: "stampede", Cores: 4}},
			},
		},
		Workloads: []Workload{{
			Name:      "wide",
			Profile:   ProfileRef{Command: "mdsim", Tags: mdTags},
			Arrival:   Arrival{Process: ArrivalBurst, Burst: 2, Every: Duration(time.Second), Bursts: 1},
			Resources: &Resources{Cores: 4},
		}},
	}
	rep := runReport(t, spec, 0)
	if rep.Emulations != 2 {
		t.Fatalf("emulations = %d, want 2", rep.Emulations)
	}
	wr := rep.Workloads[0]
	// Arrived at 0, the node only joined at 2s: everything waited for it.
	if wr.Wait.Max.D() < 2*time.Second {
		t.Fatalf("wait max = %v, want >= 2s (blocked until add_nodes)", wr.Wait.Max)
	}
	if len(rep.Cluster.Nodes) != 2 {
		t.Fatalf("nodes = %d, want 2 after add_nodes", len(rep.Cluster.Nodes))
	}
	big := rep.Cluster.Nodes[1]
	if big.Name != "big" || big.Placed != 2 {
		t.Fatalf("added node = %+v, want name big with 2 placed", big)
	}
}

// TestAutoscaleRelievesPressure: queue pressure grows the pool, cutting
// the makespan versus the fixed pool, and the report says how many nodes
// the rule added.
func TestAutoscaleRelievesPressure(t *testing.T) {
	noContention := 0.0
	mk := func(auto *Autoscale) *Spec {
		s := &Spec{
			Version: SpecVersion,
			Name:    "autoscale",
			Cluster: &cluster.Spec{
				Contention: &noContention,
				Nodes:      []cluster.NodeSpec{{Name: "base", Machine: "stampede", Cores: 1}},
			},
			Workloads: []Workload{{
				Name:      "burst",
				Profile:   ProfileRef{Command: "mdsim", Tags: mdTags},
				Arrival:   Arrival{Process: ArrivalBurst, Burst: 6, Every: Duration(time.Second), Bursts: 1},
				Resources: &Resources{Cores: 1},
			}},
		}
		if auto != nil {
			s.Events = &Events{Version: EventsVersion, Autoscale: auto}
		}
		return s
	}
	fixed := runReport(t, mk(nil), 0)
	scaled := runReport(t, mk(&Autoscale{
		CheckEvery: Duration(500 * time.Millisecond),
		QueueHigh:  2,
		Add:        cluster.NodeSpec{Name: "as", Machine: "stampede", Cores: 1},
		MaxNodes:   4,
	}), 0)
	if scaled.Emulations != 6 || fixed.Emulations != 6 {
		t.Fatalf("emulations = %d/%d, want 6/6", scaled.Emulations, fixed.Emulations)
	}
	if scaled.Cluster.Autoscaled == 0 {
		t.Fatal("autoscale added no nodes under queue pressure")
	}
	if scaled.Makespan.D() >= fixed.Makespan.D() {
		t.Fatalf("autoscale did not help: %v vs fixed %v", scaled.Makespan, fixed.Makespan)
	}
	if got := len(scaled.Cluster.Nodes); got != 1+scaled.Cluster.Autoscaled {
		t.Fatalf("nodes = %d, want base + %d autoscaled", got, scaled.Cluster.Autoscaled)
	}
	for _, n := range scaled.Cluster.Nodes[1:] {
		if !strings.HasPrefix(n.Name, "as-") {
			t.Fatalf("autoscaled node name = %q, want as-N", n.Name)
		}
	}
}

// TestEventDeterminism: events, kills, retries and autoscaling stay
// inside the (spec, seed) contract — byte-identical reports at any worker
// count, different seeds diverge (jitter makes seed reach the report).
func TestEventDeterminism(t *testing.T) {
	mk := func(seed uint64) *Spec {
		s := eventSpec()
		s.Seed = seed
		s.Cluster.Policy = cluster.PolicyRandom
		s.Workloads[0].Arrival = Arrival{Process: ArrivalPoisson, Rate: 2, Count: 12}
		s.Workloads[0].Emulation.Load = 0.1
		s.Workloads[0].Emulation.LoadJitter = 0.05
		s.Events.Autoscale = &Autoscale{
			CheckEvery: Duration(time.Second),
			QueueHigh:  3,
			Add:        cluster.NodeSpec{Name: "as", Machine: "comet", Cores: 2},
			MaxNodes:   4,
		}
		return s
	}
	a := marshal(t, runReport(t, mk(42), 1))
	b := marshal(t, runReport(t, mk(42), 8))
	if !bytes.Equal(a, b) {
		t.Fatalf("worker count changed an event-driven report:\n%s\n---\n%s", a, b)
	}
	c := marshal(t, runReport(t, mk(43), 1))
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical event-driven reports")
	}
}

// TestEventValidation: malformed events are rejected with positional
// errors naming the offending entry.
func TestEventValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"unknown version", func(s *Spec) { s.Events.Version = 9 }, "unknown events version 9"},
		{"no cluster", func(s *Spec) { s.Cluster = nil; s.Workloads[0].Resources = nil }, "events need a cluster block"},
		{"negative time", func(s *Spec) { s.Events.Timeline[1].At = Duration(-time.Second) }, "timeline[1]: negative time"},
		{"missing kind", func(s *Spec) { s.Events.Timeline[1].Kind = "" }, "timeline[1]: missing event kind"},
		{"unknown kind", func(s *Spec) { s.Events.Timeline[1].Kind = "reboot" }, `timeline[1]: unknown event kind "reboot"`},
		{"missing target", func(s *Spec) { s.Events.Timeline[0].Node = "" }, "timeline[0]: node_down needs a target node"},
		{"unknown target", func(s *Spec) { s.Events.Timeline[1].Node = "ghost" }, `timeline[1]: node_up: unknown node "ghost"`},
		{"add on node event", func(s *Spec) {
			s.Events.Timeline[0].Add = &cluster.NodeSpec{Machine: "comet"}
		}, "timeline[0]: node_down does not take an add block"},
		{"add without block", func(s *Spec) {
			s.Events.Timeline[0] = ClusterEvent{Kind: EventAddNodes}
		}, "timeline[0]: add_nodes needs an add block"},
		{"add without machine", func(s *Spec) {
			s.Events.Timeline[0] = ClusterEvent{Kind: EventAddNodes, Add: &cluster.NodeSpec{}}
		}, "timeline[0]: add_nodes: missing machine"},
		{"add duplicate name", func(s *Spec) {
			s.Events.Timeline[0] = ClusterEvent{Kind: EventAddNodes, Add: &cluster.NodeSpec{Name: "b", Machine: "comet"}}
		}, `timeline[0]: add_nodes: duplicate node name "b"`},
		{"autoscale bad cadence", func(s *Spec) {
			s.Events.Autoscale = &Autoscale{QueueHigh: 1, Add: cluster.NodeSpec{Machine: "comet"}}
		}, "autoscale: check_every must be positive"},
		{"autoscale bad thresholds", func(s *Spec) {
			s.Events.Autoscale = &Autoscale{CheckEvery: Duration(time.Second), QueueHigh: 2, QueueLow: 2,
				Add: cluster.NodeSpec{Machine: "comet"}}
		}, "autoscale: queue_low 2 outside [0, queue_high 2)"},
		{"autoscale missing machine", func(s *Spec) {
			s.Events.Autoscale = &Autoscale{CheckEvery: Duration(time.Second), QueueHigh: 2}
		}, "autoscale: add: missing machine"},
		{"autoscale name squats on a node", func(s *Spec) {
			s.Cluster.Nodes[0].Name = "as-3"
			s.Events.Timeline = nil
			s.Events.Autoscale = &Autoscale{CheckEvery: Duration(time.Second), QueueHigh: 2,
				Add: cluster.NodeSpec{Name: "as", Machine: "comet"}}
		}, `autoscale: add name "as" collides with node "as-3"`},
		{"autoscale name squats on an added node", func(s *Spec) {
			s.Events.Timeline = []ClusterEvent{{At: Duration(time.Second), Kind: EventAddNodes,
				Add: &cluster.NodeSpec{Name: "as", Machine: "comet", Count: 2}}}
			s.Events.Autoscale = &Autoscale{CheckEvery: Duration(time.Second), QueueHigh: 2,
				Add: cluster.NodeSpec{Name: "as", Machine: "comet"}}
		}, `autoscale: add name "as" collides with node "as-0"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := eventSpec()
			tc.mut(s)
			err := s.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %v does not contain %q", err, tc.want)
			}
		})
	}

	// Ordering context: a target added later in virtual time is unknown
	// when an earlier event fires, even if add_nodes comes first in the
	// list.
	s := eventSpec()
	s.Events.Timeline = []ClusterEvent{
		{At: Duration(5 * time.Second), Kind: EventAddNodes,
			Add: &cluster.NodeSpec{Name: "late", Machine: "comet"}},
		{At: Duration(time.Second), Kind: EventNodeDown, Node: "late"},
	}
	err := s.Validate()
	if err == nil || !strings.Contains(err.Error(), `timeline[1]: node_down: unknown node "late"`) {
		t.Fatalf("future-node target accepted: %v", err)
	}
}

// TestEventMachineResolution: an event that references an unresolvable
// machine fails at compile with the event's index.
func TestEventMachineResolution(t *testing.T) {
	spec := eventSpec()
	spec.Events.Timeline = append(spec.Events.Timeline, ClusterEvent{
		At: Duration(time.Second), Kind: EventAddNodes,
		Add: &cluster.NodeSpec{Name: "x", Machine: "warp-drive"},
	})
	st := seedStore(t, "mdsim")
	_, err := Run(context.Background(), spec, st, RunOptions{})
	if err == nil || !strings.Contains(err.Error(), "timeline[2]") {
		t.Fatalf("expected positional machine error, got %v", err)
	}
}

// TestTimelineSeries: the bucketed time-series accounts every arrival and
// completion, bounds occupancy by capacity, and shows the failure's kill.
func TestTimelineSeries(t *testing.T) {
	spec := eventSpec()
	spec.Timeline = &TimelineSpec{Bucket: Duration(time.Second)}
	rep := runReport(t, spec, 0)
	tl := rep.Timeline
	if tl == nil {
		t.Fatal("no timeline in report")
	}
	if tl.Bucket.D() != time.Second {
		t.Fatalf("bucket = %v", tl.Bucket)
	}
	var arrivals, completions, kills int
	for _, b := range tl.Buckets {
		arrivals += b.Arrivals
		completions += b.Completions
		kills += b.Kills
		for _, n := range b.Nodes {
			if n.Occupancy < 0 || n.Occupancy > 1.000001 {
				t.Fatalf("bucket %v node %s occupancy %g outside [0, 1]", b.Start, n.Node, n.Occupancy)
			}
		}
	}
	if completions != rep.Emulations {
		t.Fatalf("timeline completions %d != emulations %d", completions, rep.Emulations)
	}
	if kills != rep.Killed {
		t.Fatalf("timeline kills %d != killed %d", kills, rep.Killed)
	}
	// Arrivals include the two originals; kills re-queue but do not
	// re-arrive.
	if arrivals != 2 {
		t.Fatalf("timeline arrivals = %d, want 2", arrivals)
	}
	if got, want := len(tl.Buckets), int(rep.Makespan.D()/time.Second)+1; got != want {
		t.Fatalf("buckets = %d, want %d over makespan %v", got, want, rep.Makespan)
	}

	// CSV rendering: header + one row per bucket, stable columns.
	var csv bytes.Buffer
	if err := rep.TimelineCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != len(tl.Buckets)+1 {
		t.Fatalf("csv rows = %d, want %d", len(lines), len(tl.Buckets)+1)
	}
	header := lines[0]
	for _, col := range []string{"start_s", "queue_peak", "done:md", "queue:md", "occ:a", "occ:b"} {
		if !strings.Contains(header, col) {
			t.Fatalf("csv header %q missing %q", header, col)
		}
	}

	// The timeline is part of the determinism contract too.
	a := marshal(t, runReport(t, spec, 1))
	b := marshal(t, runReport(t, spec, 8))
	if !bytes.Equal(a, b) {
		t.Fatal("worker count changed the timeline")
	}
}

// TestTimelineCoversPostMakespanKills: a kill (and the resulting strand)
// landing after the last completion must still appear in the timeline —
// clipping at the makespan would hide exactly the failure the
// time-series exists to show.
func TestTimelineCoversPostMakespanKills(t *testing.T) {
	noContention := 0.0
	spec := &Spec{
		Version:  SpecVersion,
		Name:     "late-kill",
		Timeline: &TimelineSpec{Bucket: Duration(time.Second)},
		Cluster: &cluster.Spec{
			Contention: &noContention,
			Nodes:      []cluster.NodeSpec{{Name: "solo", Machine: "stampede", Cores: 4}},
		},
		Events: &Events{
			Version: EventsVersion,
			Timeline: []ClusterEvent{
				{At: Duration(5 * time.Second), Kind: EventNodeDown, Node: "solo"},
			},
		},
		Workloads: []Workload{
			{
				// Completes around 1s — the run's only completion.
				Name:      "quick",
				Profile:   ProfileRef{Command: "sleep", Tags: sleepTags},
				Arrival:   Arrival{Process: ArrivalBurst, Burst: 1, Every: Duration(time.Second), Bursts: 1},
				Resources: &Resources{Cores: 1},
			},
			{
				// Still running at 5s: killed, then stranded forever.
				Name:      "doomed",
				Profile:   ProfileRef{Command: "mdsim", Tags: mdTags},
				Arrival:   Arrival{Process: ArrivalBurst, Burst: 1, Every: Duration(time.Second), Bursts: 1},
				Resources: &Resources{Cores: 2},
				Emulation: Emulation{Load: 0.8}, // slow it well past 5s
			},
		},
	}
	rep := runReport(t, spec, 0)
	if rep.Killed != 1 || rep.Emulations != 1 || rep.Dropped != 1 {
		t.Fatalf("killed/emulations/dropped = %d/%d/%d, want 1/1/1",
			rep.Killed, rep.Emulations, rep.Dropped)
	}
	if rep.Makespan.D() >= 5*time.Second {
		t.Fatalf("makespan %v not before the 5s failure; the test needs a post-makespan kill", rep.Makespan)
	}
	kills := 0
	for _, b := range rep.Timeline.Buckets {
		kills += b.Kills
	}
	if kills != rep.Killed {
		t.Fatalf("timeline kills %d != report killed %d (post-makespan kill clipped)", kills, rep.Killed)
	}
	if got, want := len(rep.Timeline.Buckets), 6; got != want {
		t.Fatalf("buckets = %d, want %d (through the 5s kill)", got, want)
	}
}

// TestTimelineWithoutCluster: the time-series works for plain mixes —
// throughput and queue depth only, no node columns.
func TestTimelineWithoutCluster(t *testing.T) {
	spec := mixSpec()
	spec.Timeline = &TimelineSpec{Bucket: Duration(5 * time.Second)}
	rep := runReport(t, spec, 0)
	if rep.Timeline == nil {
		t.Fatal("no timeline")
	}
	total := 0
	for _, b := range rep.Timeline.Buckets {
		total += b.Completions
		if len(b.Nodes) != 0 {
			t.Fatal("unclustered timeline grew node series")
		}
	}
	if total != rep.Emulations {
		t.Fatalf("timeline completions %d != emulations %d", total, rep.Emulations)
	}
	var csv bytes.Buffer
	if err := rep.TimelineCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(strings.Split(csv.String(), "\n")[0], "occ:") {
		t.Fatal("unclustered csv has occupancy columns")
	}
}

// TestTimelineBucketTooFine: a bucket that would explode the report fails
// loudly instead of ballooning memory.
func TestTimelineBucketTooFine(t *testing.T) {
	spec := mixSpec()
	spec.Timeline = &TimelineSpec{Bucket: Duration(time.Nanosecond)}
	st := seedStore(t, "mdsim", "sleep")
	_, err := Run(context.Background(), spec, st, RunOptions{})
	if err == nil || !strings.Contains(err.Error(), "buckets") {
		t.Fatalf("expected bucket-overflow error, got %v", err)
	}
}
