package scenario

import (
	"strings"
	"testing"
	"time"
)

// validSpec returns a minimal spec that passes validation, for tests to
// break one field at a time.
func validSpec() *Spec {
	return &Spec{
		Version: SpecVersion,
		Name:    "t",
		Workloads: []Workload{{
			Name:    "w",
			Profile: ProfileRef{Command: "mdsim", Tags: map[string]string{"steps": "10000"}},
			Arrival: Arrival{Process: ArrivalClosed, Clients: 1, Iterations: 1},
		}},
	}
}

func TestValidateAcceptsMinimalSpec(t *testing.T) {
	if err := validSpec().Validate(); err != nil {
		t.Fatalf("minimal spec invalid: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"unknown version", func(s *Spec) { s.Version = 99 }, "unknown spec version 99"},
		{"zero version", func(s *Spec) { s.Version = 0 }, "unknown spec version"},
		{"no workloads", func(s *Spec) { s.Workloads = nil }, "no workloads"},
		{"negative duration", func(s *Spec) { s.Duration = -1 }, "negative duration"},
		{"negative global cap", func(s *Spec) { s.MaxConcurrent = -2 }, "negative max_concurrent"},
		{"unnamed workload", func(s *Spec) { s.Workloads[0].Name = "" }, "has no name"},
		{"duplicate workload", func(s *Spec) {
			s.Workloads = append(s.Workloads, s.Workloads[0])
		}, `duplicate workload name "w"`},
		{"missing profile command", func(s *Spec) { s.Workloads[0].Profile.Command = "" }, "missing profile command"},
		{"negative workload cap", func(s *Spec) { s.Workloads[0].MaxConcurrent = -1 }, "negative max_concurrent"},
		{"missing arrival process", func(s *Spec) { s.Workloads[0].Arrival = Arrival{} }, "missing arrival process"},
		{"unknown arrival process", func(s *Spec) { s.Workloads[0].Arrival.Process = "weibull" }, `unknown arrival process "weibull"`},
		{"closed loop no clients", func(s *Spec) { s.Workloads[0].Arrival.Clients = 0 }, "clients >= 1"},
		{"closed loop no iterations", func(s *Spec) { s.Workloads[0].Arrival.Iterations = 0 }, "iterations >= 1"},
		{"poisson zero rate", func(s *Spec) {
			s.Workloads[0].Arrival = Arrival{Process: ArrivalPoisson, Rate: 0, Count: 5}
		}, "positive rate"},
		{"constant negative rate", func(s *Spec) {
			s.Workloads[0].Arrival = Arrival{Process: ArrivalConstant, Rate: -3, Count: 5}
		}, "positive rate"},
		{"open loop unbounded", func(s *Spec) {
			s.Workloads[0].Arrival = Arrival{Process: ArrivalPoisson, Rate: 1}
		}, "count or a scenario duration"},
		{"open loop negative count", func(s *Spec) {
			s.Workloads[0].Arrival = Arrival{Process: ArrivalConstant, Rate: 1, Count: -1}
		}, "negative count"},
		{"burst zero size", func(s *Spec) {
			s.Workloads[0].Arrival = Arrival{Process: ArrivalBurst, Burst: 0, Every: Duration(time.Second), Bursts: 1}
		}, "burst >= 1"},
		{"burst no period", func(s *Spec) {
			s.Workloads[0].Arrival = Arrival{Process: ArrivalBurst, Burst: 2, Bursts: 1}
		}, "positive every"},
		{"burst unbounded", func(s *Spec) {
			s.Workloads[0].Arrival = Arrival{Process: ArrivalBurst, Burst: 2, Every: Duration(time.Second)}
		}, "bursts or a scenario duration"},
		{"load out of range", func(s *Spec) { s.Workloads[0].Emulation.Load = 1.0 }, "load 1 outside"},
		{"negative load", func(s *Spec) { s.Workloads[0].Emulation.Load = -0.1 }, "outside [0, 1)"},
		{"jitter out of range", func(s *Spec) { s.Workloads[0].Emulation.LoadJitter = 2 }, "load_jitter 2 outside"},
		{"load plus jitter saturates", func(s *Spec) {
			s.Workloads[0].Emulation.Load = 0.9
			s.Workloads[0].Emulation.LoadJitter = 0.2
		}, "must stay below 1"},
		{"negative emulation workers", func(s *Spec) { s.Workloads[0].Emulation.Workers = -1 }, "negative workers"},
		{"unknown mode", func(s *Spec) { s.Workloads[0].Emulation.Mode = "cuda" }, `unknown mode "cuda"`},
		{"unknown atom", func(s *Spec) { s.Workloads[0].Emulation.DisableAtoms = []string{"gpu"} }, `unknown atom "gpu"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := validSpec()
			tc.mut(s)
			err := s.Validate()
			if err == nil {
				t.Fatalf("expected error containing %q, got nil", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	_, err := Parse([]byte(`{"version": 1, "workloads": [], "max_concurency": 4}`))
	if err == nil || !strings.Contains(err.Error(), "max_concurency") {
		t.Fatalf("expected unknown-field error, got %v", err)
	}
}

func TestParseDurationForms(t *testing.T) {
	spec, err := Parse([]byte(`{
		"version": 1,
		"duration": "90s",
		"workloads": [{
			"name": "open",
			"profile": {"command": "mdsim"},
			"arrival": {"process": "constant", "rate": 2},
			"emulation": {"machine": "stampede"}
		}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Duration.D() != 90*time.Second {
		t.Fatalf("duration = %v, want 90s", spec.Duration)
	}

	spec, err = Parse([]byte(`{
		"version": 1,
		"duration": 2.5,
		"workloads": [{
			"name": "open",
			"profile": {"command": "mdsim"},
			"arrival": {"process": "constant", "rate": 2}
		}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Duration.D() != 2500*time.Millisecond {
		t.Fatalf("numeric duration = %v, want 2.5s", spec.Duration)
	}
}

func TestParseBadDuration(t *testing.T) {
	_, err := Parse([]byte(`{"version": 1, "duration": "fortnight", "workloads": []}`))
	if err == nil || !strings.Contains(err.Error(), "bad duration") {
		t.Fatalf("expected bad-duration error, got %v", err)
	}
}

func TestDurationRoundTrip(t *testing.T) {
	d := Duration(1500 * time.Millisecond)
	b, err := d.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `"1.5s"` {
		t.Fatalf("marshal = %s, want \"1.5s\"", b)
	}
	var back Duration
	if err := back.UnmarshalJSON(b); err != nil {
		t.Fatal(err)
	}
	if back != d {
		t.Fatalf("round trip = %v, want %v", back, d)
	}
}
