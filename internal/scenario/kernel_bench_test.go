package scenario

import (
	"testing"
	"time"

	"synapse/internal/benchutil"
	"synapse/internal/stats"
)

// foldSample builds a deterministic 1024-value latency sample.
func foldSample() []float64 {
	rng := stats.NewRNG(7)
	xs := make([]float64, 1024)
	for i := range xs {
		xs[i] = rng.Float64() * float64(time.Second)
	}
	return xs
}

// BenchmarkKernelReportFold is the report-fold micro: one summarize over a
// 1024-value sample per op — the mean/max pass, the single in-place sort,
// and the three sorted-percentile reads. The copy back from the pristine
// sample is part of the op (summarize sorts in place), mirroring how
// assemble refills its scratch between workloads.
func BenchmarkKernelReportFold(b *testing.B) {
	base := foldSample()
	buf := make([]float64, len(base))
	rec := benchutil.NewRecorder(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, base)
		if s := summarize(buf); s.Mean == 0 {
			b.Fatal("degenerate summary")
		}
		rec.Tick()
	}
	rec.Report(b)
}

// TestReportFoldAllocFree pins the fold path's allocation-free steady
// state: summarize works entirely in place, and the reporter sink's
// Observe accumulates without boxing.
func TestReportFoldAllocFree(t *testing.T) {
	base := foldSample()
	buf := make([]float64, len(base))
	fold := func() {
		copy(buf, base)
		summarize(buf)
	}
	fold() // warm-up
	if allocs := testing.AllocsPerRun(100, fold); allocs != 0 {
		t.Fatalf("summarize allocated %.1f objects per fold, want 0", allocs)
	}

	rp := newReporter(2)
	done := evCompleted{w: 1, node: 0, cores: 2, id: 7}
	kill := evKilled{w: 0, node: 0, cores: 2, id: 3}
	observe := func() {
		rp.Observe(time.Second, &done)
		rp.Observe(2*time.Second, &kill)
	}
	observe()
	if allocs := testing.AllocsPerRun(100, observe); allocs != 0 {
		t.Fatalf("reporter.Observe allocated %.1f objects per call, want 0", allocs)
	}
}
