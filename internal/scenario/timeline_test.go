package scenario

import (
	"math"
	"testing"
	"time"
)

// busySum folds one node's charged core-seconds across every materialized
// bucket.
func busySum(s *timelineSink, node int) float64 {
	var total float64
	for _, b := range s.buckets {
		if node < len(b.nodeBusy) {
			total += b.nodeBusy[node]
		}
	}
	return total
}

// TestIntegrateRewindConservation feeds the sink an out-of-order node
// observation and asserts busy-time conservation: a rewound timestamp
// must not re-charge the span that was already integrated. The earlier
// implementation rewound nodeLast unconditionally, double-counting the
// [t, last] core-seconds on the next forward span.
func TestIntegrateRewindConservation(t *testing.T) {
	s := newTimelineSink(time.Second, 1, nil)
	s.integrate(0, 0) // track node 0 from t=0
	s.nodeUsed[0] = 2

	s.integrate(0, 10*time.Second) // charges [0, 10] × 2 = 20 core-seconds
	s.integrate(0, 4*time.Second)  // out of order: must be a no-op
	s.integrate(0, 12*time.Second) // charges [10, 12] × 2 = 4 core-seconds

	want := 24.0
	if got := busySum(s, 0); math.Abs(got-want) > 1e-9 {
		t.Fatalf("busy core-seconds = %g, want %g (rewound observation double-counted)", got, want)
	}
	if last := s.nodeLast[0]; last != 12*time.Second {
		t.Fatalf("nodeLast = %v, want 12s", last)
	}
}

// TestIntegrateRewindThroughObserve drives the same conservation check
// through the public Observe path: a kill event carrying an older
// timestamp than the node's last observation must not inflate occupancy.
func TestIntegrateRewindThroughObserve(t *testing.T) {
	s := newTimelineSink(time.Second, 1, nil)
	s.Observe(0, &evNode{node: 0, cores: 4, state: "up"})
	s.Observe(0, &evStarted{w: 0, node: 0, cores: 2, id: 0})
	s.Observe(6*time.Second, &evCompleted{w: 0, node: 0, cores: 2, id: 0})
	// An out-of-order kill observation: integrate must ignore the rewind
	// (the span up to 6s is already charged) and only the still-running
	// cores — none — accrue afterwards.
	s.Observe(2*time.Second, &evKilled{w: 0, node: 0, cores: 0, id: 1})
	s.Observe(9*time.Second, &evNode{node: 0, cores: 4, state: "up"})

	want := 12.0 // 2 cores × 6 s; nothing ran after the completion
	if got := busySum(s, 0); math.Abs(got-want) > 1e-9 {
		t.Fatalf("busy core-seconds = %g, want %g", got, want)
	}
}

// TestBucketIndexGuardBoundary exercises the 2^20-bucket guard with int64
// index math: an instant far past the guard must clamp into the last
// bucket (and flag overflow) instead of truncating the index on 32-bit
// ints or materializing a million buckets. maxTimelineBuckets is a var
// precisely so this test can lower it.
func TestBucketIndexGuardBoundary(t *testing.T) {
	defer func(old int64) { maxTimelineBuckets = old }(maxTimelineBuckets)
	maxTimelineBuckets = 64

	s := newTimelineSink(time.Nanosecond, 1, nil)
	// The quotient t/bucket here is ~9.2e18 — far past any int32, and
	// past the guard; at() must clamp, not index out of range.
	s.at(time.Duration(math.MaxInt64))
	if !s.overflow {
		t.Fatal("overflow not flagged past the bucket guard")
	}
	if got := int64(len(s.buckets)); got != maxTimelineBuckets {
		t.Fatalf("materialized %d buckets, want exactly the guard's %d", got, maxTimelineBuckets)
	}
	if _, err := s.finalize(time.Second, nil); err == nil {
		t.Fatal("finalize accepted an overflowed timeline")
	}
}

// TestIntegrateBucketEndOverflow pins the span-splitting loop's overflow
// guard: with a huge bucket width, (index+1)*bucket wraps negative, and
// integrate must fall back to the span end instead of charging a negative
// duration or looping forever.
func TestIntegrateBucketEndOverflow(t *testing.T) {
	bucket := time.Duration(math.MaxInt64/2 + 1)
	s := newTimelineSink(bucket, 1, nil)
	last := bucket // bucket index 1: (1+1)*bucket overflows int64
	s.integrate(0, last)
	s.nodeUsed[0] = 1
	s.integrate(0, last+1000)

	want := time.Duration(1000).Seconds()
	if got := busySum(s, 0); math.Abs(got-want) > 1e-18 {
		t.Fatalf("busy core-seconds = %g, want %g", got, want)
	}
}
