package scenario

import (
	"fmt"
	"io"
	"time"

	"synapse/internal/telemetry"
)

// Trace process ids: workload activity (spans and counters) under one
// process, cluster/node lifecycle under another, so Perfetto groups the
// tracks sensibly.
const (
	tracePidWorkloads = 1
	tracePidCluster   = 2
)

// traceState is the scenario-side mapper feeding a telemetry.TraceSink: it
// translates the scheduler's event stream into Chrome trace events. Each
// placed instance becomes an async span keyed by its global instance id
// (async spans may overlap freely, so colocated instances render side by
// side instead of force-nesting); queue depth and running count stream as
// counter series; node lifecycle and autoscale transitions land as
// instants on per-node tracks. Everything derives from the kernel's
// deterministic event order, so a (spec, seed) pair always produces a
// byte-identical trace.
type traceState struct {
	w     *telemetry.TraceWriter
	names []string // workload names, spec order

	queued  []float64 // per-workload queue depth
	running []float64 // per-workload running count
	started int       // spans opened, to name spans w/o re-deriving state

	nodeSeen []bool // node tids already labeled
}

// newTraceSink builds the sink Run attaches to the kernel when RunOptions
// carries a trace writer.
func newTraceSink(out io.Writer, c *compiled) (*telemetry.TraceSink, *traceState) {
	ts := &traceState{
		w:       telemetry.NewTraceWriter(out),
		names:   make([]string, len(c.wls)),
		queued:  make([]float64, len(c.wls)),
		running: make([]float64, len(c.wls)),
	}
	for i, ws := range c.wls {
		ts.names[i] = ws.spec.Name
	}
	ts.w.MetaProcessName(tracePidWorkloads, "workloads: "+c.spec.Name)
	ts.w.MetaProcessName(tracePidCluster, "cluster")
	return &telemetry.TraceSink{W: ts.w, Map: ts.observe}, ts
}

// counters streams the current queue/running series after a change.
func (ts *traceState) counters(t time.Duration) {
	ts.w.Counter("queued", tracePidWorkloads, t, ts.names, ts.queued)
	ts.w.Counter("running", tracePidWorkloads, t, ts.names, ts.running)
}

// nodeTrack labels a node's track on first sight and returns its tid.
// tid 0 is the async-span track, so nodes start at 1.
func (ts *traceState) nodeTrack(node int, name string, cores int) int {
	for node >= len(ts.nodeSeen) {
		ts.nodeSeen = append(ts.nodeSeen, false)
	}
	if !ts.nodeSeen[node] {
		ts.nodeSeen[node] = true
		ts.w.MetaThreadName(tracePidCluster, node+1, fmt.Sprintf("%s (%d cores)", name, cores))
	}
	return node + 1
}

// observe is the TraceSink mapper. Events arrive as pointers to the
// scheduler's scratch values; nothing is retained.
func (ts *traceState) observe(t time.Duration, ev any, _ *telemetry.TraceWriter) {
	switch e := ev.(type) {
	case *evArrived:
		ts.queued[e.w]++
		ts.counters(t)
	case *evStarted:
		ts.queued[e.w]--
		ts.running[e.w]++
		args := ""
		if e.node >= 0 {
			args = fmt.Sprintf(`{"node":%d,"cores":%d}`, e.node, e.cores)
		}
		ts.w.AsyncBegin(ts.names[e.w], "instance", tracePidWorkloads, e.id, t, args)
		ts.started++
		ts.counters(t)
	case *evCompleted:
		ts.running[e.w]--
		ts.w.AsyncEnd(ts.names[e.w], "instance", tracePidWorkloads, e.id, t, "")
		ts.counters(t)
	case *evKilled:
		ts.running[e.w]--
		ts.queued[e.w]++ // kill-and-retry: back in the queue
		ts.w.AsyncEnd(ts.names[e.w], "instance", tracePidWorkloads, e.id, t, `{"killed":true}`)
		ts.w.Instant("kill: "+ts.names[e.w], "failure", tracePidCluster, e.node+1, t, "t", "")
		ts.counters(t)
	case *evDropped:
		if e.queued {
			ts.queued[e.w] -= float64(e.n)
		}
		ts.w.Instant(fmt.Sprintf("drop: %s (%d)", ts.names[e.w], e.n),
			"drop", tracePidWorkloads, 0, t, "p", "")
		ts.counters(t)
	case *evNode:
		tid := ts.nodeTrack(e.node, e.name, e.cores)
		ts.w.Instant("node "+e.state, "lifecycle", tracePidCluster, tid, t, "t", "")
	}
}

// close terminates the trace document.
func (ts *traceState) close() error {
	if err := ts.w.Close(); err != nil {
		return fmt.Errorf("scenario: trace: %w", err)
	}
	return nil
}

// progressSink is the live stderr meter: virtual time, arrival rate and
// queue depth, updated in place (carriage return) at a wall-clock cadence
// so huge runs don't drown the terminal. It writes no newline until done,
// and never touches the report — purely cosmetic.
type progressSink struct {
	out      io.Writer
	arrived  int
	done     int
	queued   int
	last     time.Time // wall clock of the last repaint
	interval time.Duration
}

func newProgressSink(out io.Writer) *progressSink {
	return &progressSink{out: out, interval: 100 * time.Millisecond}
}

// Observe implements sim.MetricsSink.
func (p *progressSink) Observe(t time.Duration, ev any) {
	switch e := ev.(type) {
	case *evArrived:
		p.arrived++
		p.queued++
	case *evStarted:
		p.queued--
	case *evCompleted:
		p.done++
	case *evKilled:
		p.queued++
	case *evDropped:
		if e.queued {
			p.queued -= e.n
		}
		p.done += e.n
	default:
		return
	}
	if now := time.Now(); now.Sub(p.last) >= p.interval {
		p.last = now
		p.paint(t, "")
	}
}

// paint renders one meter line; tail is "\n" for the final repaint.
func (p *progressSink) paint(t time.Duration, tail string) {
	rate := 0.0
	if secs := t.Seconds(); secs > 0 {
		rate = float64(p.arrived) / secs
	}
	fmt.Fprintf(p.out, "\rscenario: t=%-12s arrived=%-8d done=%-8d queue=%-6d arrivals/s=%-8.1f%s",
		t, p.arrived, p.done, p.queued, rate, tail)
}

// finish paints the final state and terminates the meter line.
func (p *progressSink) finish(t time.Duration) {
	p.paint(t, "\n")
}
