package scenario

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"synapse/internal/cluster"
)

// clusterSpec is a mixed workload on a small finite cluster: a closed MD
// loop and a burst of sleepers compete for two stampede nodes.
func clusterSpec(policy string) *Spec {
	contention := 0.5
	return &Spec{
		Version: SpecVersion,
		Name:    "cluster-mix",
		Seed:    42,
		Cluster: &cluster.Spec{
			Policy:     policy,
			Contention: &contention,
			Nodes: []cluster.NodeSpec{
				{Name: "node", Machine: "stampede", Count: 2, Cores: 4},
			},
		},
		Workloads: []Workload{
			{
				Name:      "md",
				Profile:   ProfileRef{Command: "mdsim", Tags: mdTags},
				Arrival:   Arrival{Process: ArrivalClosed, Clients: 3, Iterations: 3},
				Resources: &Resources{Cores: 2},
			},
			{
				Name:    "sleepers",
				Profile: ProfileRef{Command: "sleep", Tags: sleepTags},
				Arrival: Arrival{Process: ArrivalBurst, Burst: 4, Every: Duration(time.Second), Bursts: 2},
				Emulation: Emulation{
					Load:       0.1,
					LoadJitter: 0.05,
				},
			},
		},
	}
}

// TestClusterDeterminism extends the reproducibility contract to placement:
// a fixed (spec+cluster, seed) yields a byte-identical report at any worker
// count, for every policy.
func TestClusterDeterminism(t *testing.T) {
	for _, policy := range []string{
		cluster.PolicyFirstFit, cluster.PolicyBestFit,
		cluster.PolicyLeastLoaded, cluster.PolicyRandom,
	} {
		t.Run(policy, func(t *testing.T) {
			a := marshal(t, runReport(t, clusterSpec(policy), 1))
			b := marshal(t, runReport(t, clusterSpec(policy), 8))
			if !bytes.Equal(a, b) {
				t.Fatalf("worker count changed the clustered report:\n%s\n---\n%s", a, b)
			}
		})
	}
}

func TestClusterReportShape(t *testing.T) {
	rep := runReport(t, clusterSpec(cluster.PolicyLeastLoaded), 0)
	cr := rep.Cluster
	if cr == nil {
		t.Fatal("clustered run produced no cluster report")
	}
	if cr.Policy != cluster.PolicyLeastLoaded {
		t.Errorf("policy = %q", cr.Policy)
	}
	if len(cr.Nodes) != 2 || cr.Nodes[0].Name != "node-0" || cr.Nodes[1].Name != "node-1" {
		t.Fatalf("nodes = %+v", cr.Nodes)
	}
	// Every completed instance was placed exactly once.
	if cr.Placements != rep.Emulations {
		t.Errorf("placements = %d, emulations = %d", cr.Placements, rep.Emulations)
	}
	var placed int
	for _, n := range cr.Nodes {
		placed += n.Placed
		if n.Machine != "stampede" || n.Cores != 4 {
			t.Errorf("node = %+v", n)
		}
		if n.Busy <= 0 || n.Utilization <= 0 || n.Utilization > 1 {
			t.Errorf("node %s accounting: busy=%v util=%g", n.Name, n.Busy, n.Utilization)
		}
		if n.PeakCores <= 0 || n.PeakCores > n.Cores {
			t.Errorf("node %s peak = %d", n.Name, n.PeakCores)
		}
	}
	if placed != cr.Placements {
		t.Errorf("per-node placed sums to %d, placements = %d", placed, cr.Placements)
	}
	for _, wr := range rep.Workloads {
		if wr.Machine != "cluster" {
			t.Errorf("workload %s machine = %q, want cluster", wr.Name, wr.Machine)
		}
	}
}

// TestClusterQueuesWhenFull: four simultaneous single-core instances
// through a one-core cluster serialize exactly like a concurrency cap of 1.
func TestClusterQueuesWhenFull(t *testing.T) {
	noContention := 0.0
	spec := &Spec{
		Version: SpecVersion,
		Name:    "tight",
		Cluster: &cluster.Spec{
			Contention: &noContention,
			Nodes:      []cluster.NodeSpec{{Machine: "stampede", Cores: 1}},
		},
		Workloads: []Workload{{
			Name:    "burst",
			Profile: ProfileRef{Command: "mdsim", Tags: mdTags},
			Arrival: Arrival{Process: ArrivalBurst, Burst: 4, Every: Duration(time.Second), Bursts: 1},
		}},
	}
	rep := runReport(t, spec, 0)
	wr := rep.Workloads[0]
	if wr.Emulations != 4 {
		t.Fatalf("emulations = %d, want 4", wr.Emulations)
	}
	svc := wr.Service.P50.D()
	if want := Duration(3 * svc); wr.Wait.Max != want {
		t.Fatalf("wait max = %v, want 3×service = %v", wr.Wait.Max, want)
	}
	if rep.Cluster.Rejections == 0 {
		t.Error("a saturated cluster should record rejections")
	}
	if got := rep.Cluster.Nodes[0].PeakCores; got != 1 {
		t.Errorf("peak cores = %d, want 1", got)
	}
	// With identical instances on one machine at one occupancy level, all
	// four share a single replay.
	if rep.Replays != 1 {
		t.Errorf("replays = %d, want 1", rep.Replays)
	}
}

// TestClusterContentionSlowsColocation: the same burst on one node takes
// longer when colocation maps onto background load.
func TestClusterContentionSlowsColocation(t *testing.T) {
	mk := func(contention float64) *Spec {
		return &Spec{
			Version: SpecVersion,
			Name:    "contention",
			Cluster: &cluster.Spec{
				Contention: &contention,
				Nodes:      []cluster.NodeSpec{{Machine: "stampede", Cores: 4}},
			},
			Workloads: []Workload{{
				Name:    "burst",
				Profile: ProfileRef{Command: "mdsim", Tags: mdTags},
				Arrival: Arrival{Process: ArrivalBurst, Burst: 4, Every: Duration(time.Second), Bursts: 1},
			}},
		}
	}
	calm := runReport(t, mk(0), 0)
	loud := runReport(t, mk(0.9), 0)
	if loud.Makespan <= calm.Makespan {
		t.Fatalf("contention did not slow the mix: %v vs %v", loud.Makespan, calm.Makespan)
	}
	// Occupancies 0, 1/4, 2/4, 3/4 give four distinct effective loads —
	// four distinct replays where the uncontended run needs one.
	if calm.Replays != 1 || loud.Replays != 4 {
		t.Fatalf("replays = %d/%d, want 1/4", calm.Replays, loud.Replays)
	}
	if loud.Workloads[0].Service.Max <= loud.Workloads[0].Service.P50 {
		t.Error("later placements should serve slower than the first")
	}
}

// TestClusterHeterogeneousNodes: instances spill onto a second, slower
// machine, so service times split into two groups.
func TestClusterHeterogeneousNodes(t *testing.T) {
	noContention := 0.0
	spec := &Spec{
		Version: SpecVersion,
		Name:    "hetero",
		Cluster: &cluster.Spec{
			Policy:     cluster.PolicyFirstFit,
			Contention: &noContention,
			Nodes: []cluster.NodeSpec{
				{Machine: "stampede", Cores: 1},
				{Machine: "thinkie", Cores: 1},
			},
		},
		Workloads: []Workload{{
			Name:    "pair",
			Profile: ProfileRef{Command: "mdsim", Tags: mdTags},
			Arrival: Arrival{Process: ArrivalBurst, Burst: 2, Every: Duration(time.Second), Bursts: 1},
		}},
	}
	rep := runReport(t, spec, 0)
	wr := rep.Workloads[0]
	if wr.Emulations != 2 {
		t.Fatalf("emulations = %d, want 2", wr.Emulations)
	}
	if wr.Service.Max == wr.Service.P50 {
		t.Error("both machines served at the same speed; expected distinct service times")
	}
	if rep.Replays != 2 {
		t.Errorf("replays = %d, want 2 (one per machine)", rep.Replays)
	}
	for _, n := range rep.Cluster.Nodes {
		if n.Placed != 1 {
			t.Errorf("node %s placed = %d, want 1", n.Name, n.Placed)
		}
	}
}

// TestClusterInlineMachine: a node machine defined inline in the spec, never
// registered globally.
func TestClusterInlineMachine(t *testing.T) {
	data := []byte(`{
		"version": 1,
		"name": "inline",
		"seed": 7,
		"cluster": {
			"machines": {
				"pocket": {"name": "pocket", "clock_ghz": 1.2, "cores": 2,
				           "mem_gb": 4, "mem_bw_gbs": 8}
			},
			"nodes": [{"machine": "pocket"}]
		},
		"workloads": [{
			"name": "md",
			"profile": {"command": "mdsim", "tags": {"steps": "10000"}},
			"arrival": {"process": "closed", "clients": 1, "iterations": 2}
		}]
	}`)
	spec, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	rep := runReport(t, spec, 0)
	if rep.Emulations != 2 {
		t.Fatalf("emulations = %d, want 2", rep.Emulations)
	}
	if got := rep.Cluster.Nodes[0].Machine; got != "pocket" {
		t.Fatalf("node machine = %q, want pocket", got)
	}
}

// TestClusterTooWideWorkloadFails: a resource request no node can ever host
// fails fast instead of queueing forever.
func TestClusterTooWideWorkloadFails(t *testing.T) {
	spec := clusterSpec(cluster.PolicyFirstFit)
	spec.Workloads[0].Resources = &Resources{Cores: 64}
	st := seedStore(t, "mdsim", "sleep")
	_, err := Run(context.Background(), spec, st, RunOptions{})
	if err == nil || !strings.Contains(err.Error(), "fits no cluster node") {
		t.Fatalf("expected fit error, got %v", err)
	}
}

func TestClusterSpecValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"machine conflicts with cluster", func(s *Spec) {
			s.Workloads[0].Emulation.Machine = "comet"
		}, "conflicts with the cluster"},
		{"bad nested cluster", func(s *Spec) { s.Cluster.Policy = "tarot" }, "unknown policy"},
		{"negative resources", func(s *Spec) {
			s.Workloads[0].Resources = &Resources{Cores: -1}
		}, "negative resources.cores"},
		{"negative resource memory", func(s *Spec) {
			s.Workloads[0].Resources = &Resources{MemGB: -2}
		}, "resources.mem_gb -2 outside"},
		{"resource memory overflows bytes", func(s *Spec) {
			s.Workloads[0].Resources = &Resources{MemGB: 2e10}
		}, "outside [0,"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := clusterSpec(cluster.PolicyFirstFit)
			tc.mut(s)
			err := s.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %v does not contain %q", err, tc.want)
			}
		})
	}

	// resources without a cluster block is inert, not an error: specs can
	// be written cluster-agnostic and gain a pool via synapse-sim -cluster.
	s := validSpec()
	s.Workloads[0].Resources = &Resources{Cores: 2}
	if err := s.Validate(); err != nil {
		t.Fatalf("cluster-agnostic resources rejected: %v", err)
	}
}

// TestClusterCapsCompose: the scenario-wide cap still binds inside a wide
// cluster.
func TestClusterCapsCompose(t *testing.T) {
	noContention := 0.0
	spec := &Spec{
		Version:       SpecVersion,
		Name:          "caps",
		MaxConcurrent: 1,
		Cluster: &cluster.Spec{
			Contention: &noContention,
			Nodes:      []cluster.NodeSpec{{Machine: "stampede", Count: 4}},
		},
		Workloads: []Workload{{
			Name:    "burst",
			Profile: ProfileRef{Command: "mdsim", Tags: mdTags},
			Arrival: Arrival{Process: ArrivalBurst, Burst: 3, Every: Duration(time.Second), Bursts: 1},
		}},
	}
	rep := runReport(t, spec, 0)
	wr := rep.Workloads[0]
	svc := wr.Service.P50.D()
	if want := Duration(2 * svc); wr.Wait.Max != want {
		t.Fatalf("wait max = %v, want 2×service = %v (global cap must bind)", wr.Wait.Max, want)
	}
}

// TestClusterSkipAhead: a wide workload blocked by cluster capacity must not
// block a narrow workload that arrived later.
func TestClusterSkipAhead(t *testing.T) {
	noContention := 0.0
	spec := &Spec{
		Version: SpecVersion,
		Name:    "skip",
		Cluster: &cluster.Spec{
			Contention: &noContention,
			Nodes:      []cluster.NodeSpec{{Machine: "stampede", Cores: 4}},
		},
		Workloads: []Workload{
			{
				Name:      "wide",
				Profile:   ProfileRef{Command: "mdsim", Tags: mdTags},
				Arrival:   Arrival{Process: ArrivalBurst, Burst: 2, Every: Duration(time.Second), Bursts: 1},
				Resources: &Resources{Cores: 3},
			},
			{
				Name:      "narrow",
				Profile:   ProfileRef{Command: "sleep", Tags: sleepTags},
				Arrival:   Arrival{Process: ArrivalBurst, Burst: 1, Every: Duration(time.Second), Bursts: 1},
				Resources: &Resources{Cores: 1},
			},
		},
	}
	rep := runReport(t, spec, 0)
	var narrow WorkloadReport
	for _, wr := range rep.Workloads {
		if wr.Name == "narrow" {
			narrow = wr
		}
	}
	// The first wide instance takes 3 cores; the second wide instance
	// cannot fit, but the narrow one (1 core) arrived at the same time
	// and must start immediately in the remaining core.
	if narrow.Wait.Max != 0 {
		t.Fatalf("narrow workload waited %v behind a blocked wide head", narrow.Wait.Max)
	}
}

func TestRemarshalKeepsCluster(t *testing.T) {
	spec := clusterSpec(cluster.PolicyBestFit)
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatalf("re-parse of marshaled cluster spec failed: %v\n%s", err, data)
	}
	if back.Cluster == nil || back.Cluster.Policy != cluster.PolicyBestFit ||
		len(back.Cluster.Nodes) != 1 || back.Cluster.Nodes[0].Count != 2 {
		t.Fatalf("cluster block lost in round trip: %+v", back.Cluster)
	}
}
