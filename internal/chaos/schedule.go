// Package chaos is a deterministic, seedable TCP fault injector for the
// synapsed service path. A Proxy sits between a wire client and a real
// server and degrades connections on a *scripted schedule*: added latency,
// connection resets (RST), response truncation (FIN mid-body), and
// blackholes (accept, then never answer). Faults are assigned by connection
// index — the i-th accepted connection gets rule i mod len(rules) — so a
// test that disables HTTP keep-alives sees a deterministic fault per
// request, and the same schedule+seed always injects the same faults.
//
// Unlike storetest.Flaky, which injects at the Store interface, chaos
// injects at the wire: a truncated response exercises the client's body
// reader, a reset exercises its transport error handling, and a blackhole
// exercises its per-attempt deadline. This is the harness behind the
// conformance-suite-over-a-faulty-wire tests.
//
// Schedules parse from a compact script (see ParseSchedule):
//
//	ok; delay:5ms; reset:200@GET,DELETE; trunc:120@GET; hole:50ms@GET
package chaos

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Action is the fault a rule applies to its connection.
type Action uint8

const (
	// Pass forwards the connection untouched.
	Pass Action = iota
	// Delay adds latency before bytes flow.
	Delay
	// Reset forcibly resets (RST) the client connection after AfterBytes
	// of the response have been forwarded.
	Reset
	// Truncate half-closes the client connection (FIN) after AfterBytes
	// of the response — a short body with a clean EOF.
	Truncate
	// Blackhole swallows the request and never responds; the connection
	// dies when Dur elapses (or the proxy closes).
	Blackhole
)

func (a Action) String() string {
	switch a {
	case Pass:
		return "ok"
	case Delay:
		return "delay"
	case Reset:
		return "reset"
	case Truncate:
		return "trunc"
	case Blackhole:
		return "hole"
	default:
		return fmt.Sprintf("action(%d)", uint8(a))
	}
}

// maxDur bounds scripted durations so a hostile schedule cannot park a
// connection (or a fuzzer) for hours.
const maxDur = 10 * time.Second

// Rule is one slot of the schedule.
type Rule struct {
	Action Action
	// Dur is the added latency (Delay) or the hold time before the
	// connection dies (Blackhole; 0 means until the proxy closes).
	Dur time.Duration
	// AfterBytes is how many response bytes Reset/Truncate let through
	// before cutting the connection.
	AfterBytes int64
	// Methods restricts the fault to connections whose first request line
	// uses one of these HTTP methods (upper-case). Empty matches any.
	// Connections that do not match fall back to Pass, so writes can be
	// exempted while reads take faults.
	Methods []string
}

func (r Rule) matches(method string) bool {
	if len(r.Methods) == 0 {
		return true
	}
	for _, m := range r.Methods {
		if m == method {
			return true
		}
	}
	return false
}

// String renders the rule in ParseSchedule syntax.
func (r Rule) String() string {
	var b strings.Builder
	b.WriteString(r.Action.String())
	switch r.Action {
	case Delay:
		fmt.Fprintf(&b, ":%s", r.Dur)
	case Reset, Truncate:
		fmt.Fprintf(&b, ":%d", r.AfterBytes)
	case Blackhole:
		if r.Dur > 0 {
			fmt.Fprintf(&b, ":%s", r.Dur)
		}
	}
	if len(r.Methods) > 0 {
		b.WriteString("@" + strings.Join(r.Methods, ","))
	}
	return b.String()
}

// Schedule scripts the proxy: connection i takes Rules[i % len(Rules)]
// (Pass when the rule's method filter does not match). Seed derives the
// deterministic jitter applied to Delay rules; Seed 0 disables jitter.
type Schedule struct {
	Seed  uint64
	Rules []Rule
}

// String renders the schedule in ParseSchedule syntax (Seed excluded).
func (s Schedule) String() string {
	parts := make([]string, len(s.Rules))
	for i, r := range s.Rules {
		parts[i] = r.String()
	}
	return strings.Join(parts, ";")
}

// rule returns the schedule slot for connection index i.
func (s Schedule) rule(i int64) Rule {
	if len(s.Rules) == 0 {
		return Rule{Action: Pass}
	}
	return s.Rules[int(i%int64(len(s.Rules)))]
}

// splitmix64 is the finalizer used to derive per-connection jitter from
// (Seed, conn index) — the same mixer internal/sim uses for named streams.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// jitter scales d to [0.5d, 1.5d) deterministically from (seed, idx).
func (s Schedule) jitter(d time.Duration, idx int64) time.Duration {
	if s.Seed == 0 || d <= 0 {
		return d
	}
	u := splitmix64(s.Seed ^ uint64(idx)*0x9e3779b97f4a7c15)
	frac := float64(u>>11) / float64(1<<53) // [0, 1)
	return time.Duration(float64(d) * (0.5 + frac))
}

// ParseSchedule compiles the compact fault script: rules separated by ';',
// each `action[:arg][@METHOD[,METHOD...]]`:
//
//	ok                      pass through
//	delay:DUR               add DUR latency (Go duration syntax)
//	reset:N                 RST after N response bytes
//	trunc:N                 FIN after N response bytes
//	hole[:DUR]              never respond; kill the conn after DUR (0 = hold)
//
// Durations are capped at 10s and byte counts must be non-negative; empty
// rules and an empty script are errors. The result round-trips through
// Schedule.String.
func ParseSchedule(script string) (Schedule, error) {
	var s Schedule
	parts := strings.Split(script, ";")
	for i, part := range parts {
		part = strings.TrimSpace(part)
		if part == "" {
			return Schedule{}, fmt.Errorf("chaos: rule %d is empty", i)
		}
		var methods []string
		if at := strings.IndexByte(part, '@'); at >= 0 {
			for _, m := range strings.Split(part[at+1:], ",") {
				m = strings.TrimSpace(m)
				if m == "" || m != strings.ToUpper(m) || strings.ContainsAny(m, " \t@:;") {
					return Schedule{}, fmt.Errorf("chaos: rule %d: bad method %q", i, m)
				}
				methods = append(methods, m)
			}
			if len(methods) == 0 {
				return Schedule{}, fmt.Errorf("chaos: rule %d: empty method filter", i)
			}
			part = part[:at]
		}
		name, arg := part, ""
		if c := strings.IndexByte(part, ':'); c >= 0 {
			name, arg = part[:c], part[c+1:]
		}
		r := Rule{Methods: methods}
		switch name {
		case "ok":
			if arg != "" {
				return Schedule{}, fmt.Errorf("chaos: rule %d: ok takes no argument", i)
			}
		case "delay":
			d, err := parseDur(arg)
			if err != nil || d <= 0 {
				return Schedule{}, fmt.Errorf("chaos: rule %d: delay wants a positive duration, got %q", i, arg)
			}
			r.Action, r.Dur = Delay, d
		case "reset", "trunc":
			n, err := strconv.ParseInt(arg, 10, 64)
			if err != nil || n < 0 {
				return Schedule{}, fmt.Errorf("chaos: rule %d: %s wants a byte count, got %q", i, name, arg)
			}
			r.Action, r.AfterBytes = Reset, n
			if name == "trunc" {
				r.Action = Truncate
			}
		case "hole":
			r.Action = Blackhole
			if arg != "" {
				d, err := parseDur(arg)
				if err != nil || d <= 0 {
					return Schedule{}, fmt.Errorf("chaos: rule %d: hole wants a positive duration, got %q", i, arg)
				}
				r.Dur = d
			}
		default:
			return Schedule{}, fmt.Errorf("chaos: rule %d: unknown action %q", i, name)
		}
		s.Rules = append(s.Rules, r)
	}
	return s, nil
}

func parseDur(arg string) (time.Duration, error) {
	d, err := time.ParseDuration(arg)
	if err != nil {
		return 0, err
	}
	if d > maxDur {
		return 0, fmt.Errorf("duration %v exceeds the %v cap", d, maxDur)
	}
	return d, nil
}

// MustParse is ParseSchedule for tests and constants: it panics on error.
func MustParse(script string) Schedule {
	s, err := ParseSchedule(script)
	if err != nil {
		panic(err)
	}
	return s
}
