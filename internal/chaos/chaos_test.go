package chaos

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"synapse/internal/testutil"
)

// backend returns a plain HTTP server (real TCP listener) serving a fixed
// body, plus its host:port.
func backend(t *testing.T, body string) string {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, body)
	}))
	t.Cleanup(ts.Close)
	return strings.TrimPrefix(ts.URL, "http://")
}

// client returns an HTTP client that opens a fresh connection per request,
// so each request maps 1:1 onto a schedule slot.
func client(timeout time.Duration) *http.Client {
	return &http.Client{
		Timeout:   timeout,
		Transport: &http.Transport{DisableKeepAlives: true},
	}
}

func startProxy(t *testing.T, target, script string, seed uint64) *Proxy {
	t.Helper()
	sched := MustParse(script)
	sched.Seed = seed
	p, err := Start(target, sched)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func TestParseScheduleRoundTrip(t *testing.T) {
	scripts := []string{
		"ok",
		"delay:5ms",
		"reset:200@GET,DELETE",
		"trunc:120@GET",
		"hole:50ms@GET",
		"hole",
		"ok;delay:2ms;reset:0;trunc:64@GET;hole:1s@GET,DELETE",
	}
	for _, script := range scripts {
		s, err := ParseSchedule(script)
		if err != nil {
			t.Fatalf("ParseSchedule(%q): %v", script, err)
		}
		again, err := ParseSchedule(s.String())
		if err != nil {
			t.Fatalf("reparse of %q (%q): %v", script, s.String(), err)
		}
		if s.String() != again.String() {
			t.Fatalf("round trip drifted: %q -> %q", s.String(), again.String())
		}
	}
}

func TestParseScheduleErrors(t *testing.T) {
	for _, script := range []string{
		"", ";", "ok;;ok", "nope", "delay", "delay:-3ms", "delay:11s",
		"reset:x", "reset:-1", "ok:5", "hole:0s", "reset:1@", "reset:1@get",
		"reset:1@G ET", "delay:5ms@,",
	} {
		if _, err := ParseSchedule(script); err == nil {
			t.Errorf("ParseSchedule(%q) accepted, want error", script)
		}
	}
}

func TestProxyPassAndDelay(t *testing.T) {
	addr := backend(t, "hello")
	p := startProxy(t, addr, "ok;delay:60ms", 0)
	hc := client(5 * time.Second)

	get := func() (string, time.Duration) {
		t.Helper()
		start := time.Now()
		resp, err := hc.Get("http://" + p.Addr() + "/")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b), time.Since(start)
	}
	if body, _ := get(); body != "hello" {
		t.Fatalf("pass-through body = %q", body)
	}
	if body, took := get(); body != "hello" || took < 60*time.Millisecond {
		t.Fatalf("delayed conn: body=%q took=%v, want hello after >= 60ms", body, took)
	}
	st := p.Stats()
	if st.Passed < 1 || st.Delayed != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestProxyResetAndTruncate(t *testing.T) {
	// A body long enough that cutting at 20 response bytes severs mid-header.
	addr := backend(t, strings.Repeat("x", 4096))
	p := startProxy(t, addr, "reset:20;trunc:20", 0)
	hc := client(5 * time.Second)

	for i, want := range []string{"reset", "truncate"} {
		resp, err := hc.Get("http://" + p.Addr() + "/")
		if err == nil {
			// Headers may have parsed if the cut landed later; the body
			// read must then fail.
			_, err = io.ReadAll(resp.Body)
			resp.Body.Close()
		}
		if err == nil {
			t.Fatalf("conn %d (%s): request succeeded through a severed wire", i, want)
		}
	}
	st := p.Stats()
	if st.Resets != 1 || st.Truncated != 1 {
		t.Fatalf("stats = %+v, want one reset and one truncation", st)
	}
}

func TestProxyBlackholeTimesOutClient(t *testing.T) {
	addr := backend(t, "never")
	p := startProxy(t, addr, "hole", 0)
	hc := client(150 * time.Millisecond)
	start := time.Now()
	_, err := hc.Get("http://" + p.Addr() + "/")
	if err == nil {
		t.Fatal("blackholed request returned")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("err = %v, want client timeout", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("timeout took far longer than the client deadline")
	}
	if p.Stats().Holes != 1 {
		t.Fatalf("stats = %+v", p.Stats())
	}
}

func TestProxyBlackholeWithHoldDur(t *testing.T) {
	addr := backend(t, "never")
	p := startProxy(t, addr, "hole:40ms", 0)
	hc := client(5 * time.Second)
	start := time.Now()
	_, err := hc.Get("http://" + p.Addr() + "/")
	if err == nil {
		t.Fatal("blackholed request returned")
	}
	if took := time.Since(start); took < 40*time.Millisecond || took > 2*time.Second {
		t.Fatalf("hole released after %v, want ~40ms", took)
	}
}

func TestMethodFilterExemptsWrites(t *testing.T) {
	addr := backend(t, "ok")
	p := startProxy(t, addr, "reset:0@GET", 0)
	hc := client(5 * time.Second)

	// Connection 0 carries a PUT: the GET-only reset must not fire.
	req, _ := http.NewRequest(http.MethodPut, "http://"+p.Addr()+"/", strings.NewReader("body"))
	resp, err := hc.Do(req)
	if err != nil {
		t.Fatalf("PUT through GET-targeted fault: %v", err)
	}
	resp.Body.Close()
	// Connection 1 carries a GET and takes the reset.
	if _, err := hc.Get("http://" + p.Addr() + "/"); err == nil {
		t.Fatal("GET should have been reset")
	}
	st := p.Stats()
	if st.Passed != 1 || st.Resets != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCloseSeversBlackholedConns(t *testing.T) {
	testutil.CheckGoroutines(t)
	addr := backend(t, "x")
	sched := MustParse("hole")
	p, err := Start(addr, sched)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		hc := client(10 * time.Second) // far longer than the test will wait
		_, err := hc.Get("http://" + p.Addr() + "/")
		done <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the request get swallowed
	closed := make(chan struct{})
	go func() { p.Close(); close(closed) }()
	select {
	case <-closed:
	case <-time.After(2 * time.Second):
		t.Fatal("Close deadlocked on a blackholed connection")
	}
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("blackholed request claims success")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("client still blocked after proxy close")
	}
}

func TestJitterDeterministicPerSeed(t *testing.T) {
	s := Schedule{Seed: 42, Rules: []Rule{{Action: Delay, Dur: 100 * time.Millisecond}}}
	for idx := int64(0); idx < 8; idx++ {
		a := s.jitter(100*time.Millisecond, idx)
		b := s.jitter(100*time.Millisecond, idx)
		if a != b {
			t.Fatalf("jitter(idx=%d) nondeterministic: %v vs %v", idx, a, b)
		}
		if a < 50*time.Millisecond || a >= 150*time.Millisecond {
			t.Fatalf("jitter(idx=%d) = %v outside [0.5d, 1.5d)", idx, a)
		}
	}
	other := Schedule{Seed: 43}
	if s.jitter(100*time.Millisecond, 0) == other.jitter(100*time.Millisecond, 0) {
		t.Fatal("different seeds produced identical jitter (suspicious)")
	}
	zero := Schedule{}
	if zero.jitter(100*time.Millisecond, 0) != 100*time.Millisecond {
		t.Fatal("seed 0 must disable jitter")
	}
}
