package chaos

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Stats counts what the proxy has done, by fault.
type Stats struct {
	Conns     int64 // accepted connections
	Passed    int64 // forwarded untouched (incl. method-filter misses)
	Delayed   int64
	Resets    int64
	Truncated int64
	Holes     int64
}

// Proxy is a live fault-injecting TCP proxy. Construct with Start; direct
// clients at Addr(); stop with Close (which severs every live connection,
// so no test can deadlock on a blackholed request).
type Proxy struct {
	target string
	sched  Schedule
	ln     net.Listener

	seq    atomic.Int64
	closed chan struct{}
	wg     sync.WaitGroup

	mu    sync.Mutex
	conns map[net.Conn]struct{}

	stats struct {
		conns, passed, delayed, resets, truncated, holes atomic.Int64
	}
}

// Start listens on 127.0.0.1:0 and proxies every connection to target
// (host:port), applying the schedule.
func Start(target string, sched Schedule) (*Proxy, error) {
	return StartOn("127.0.0.1:0", target, sched)
}

// StartOn is Start with an explicit listen address, for standalone use
// (cmd/chaosproxy) where clients need a known port rather than Addr().
func StartOn(listen, target string, sched Schedule) (*Proxy, error) {
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return nil, fmt.Errorf("chaos: listen: %w", err)
	}
	p := &Proxy{
		target: target,
		sched:  sched,
		ln:     ln,
		closed: make(chan struct{}),
		conns:  map[net.Conn]struct{}{},
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's host:port.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Stats snapshots the fault counters.
func (p *Proxy) Stats() Stats {
	return Stats{
		Conns:     p.stats.conns.Load(),
		Passed:    p.stats.passed.Load(),
		Delayed:   p.stats.delayed.Load(),
		Resets:    p.stats.resets.Load(),
		Truncated: p.stats.truncated.Load(),
		Holes:     p.stats.holes.Load(),
	}
}

// Close stops accepting, severs every live connection, and waits for the
// connection handlers to drain.
func (p *Proxy) Close() error {
	select {
	case <-p.closed:
		return nil
	default:
	}
	close(p.closed)
	err := p.ln.Close()
	p.mu.Lock()
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	p.wg.Wait()
	return err
}

// track registers c for force-close at proxy shutdown.
func (p *Proxy) track(c net.Conn) {
	p.mu.Lock()
	p.conns[c] = struct{}{}
	p.mu.Unlock()
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
	c.Close()
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		idx := p.seq.Add(1) - 1
		p.stats.conns.Add(1)
		p.track(c)
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			defer p.untrack(c)
			p.handle(c, idx)
		}()
	}
}

// sleep waits for d, cut short when the proxy closes; reports false on cut.
func (p *Proxy) sleep(d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-p.closed:
		return false
	}
}

// handle applies connection idx's scheduled fault. The first request line is
// sniffed (and still forwarded) so rules can target idempotent methods only.
func (p *Proxy) handle(client net.Conn, idx int64) {
	rule := p.sched.rule(idx)

	// Sniff the HTTP request line to apply the rule's method filter. The
	// bytes are replayed to the upstream, so the wire is untouched.
	br := bufio.NewReader(client)
	head, err := br.ReadBytes('\n')
	if err != nil && len(head) == 0 {
		return // closed before a request arrived
	}
	method, _, _ := strings.Cut(string(head), " ")
	if rule.Action != Pass && !rule.matches(strings.TrimSpace(method)) {
		rule = Rule{Action: Pass}
	}
	clientIn := io.MultiReader(bytes.NewReader(head), br)

	switch rule.Action {
	case Blackhole:
		p.stats.holes.Add(1)
		// Swallow the request and never answer. The reader goroutine
		// unblocks when untrack closes the conn.
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			_, _ = io.Copy(io.Discard, clientIn)
		}()
		if rule.Dur > 0 {
			p.sleep(p.sched.jitter(rule.Dur, idx))
		} else {
			<-p.closed
		}
		return
	case Delay:
		p.stats.delayed.Add(1)
		if !p.sleep(p.sched.jitter(rule.Dur, idx)) {
			return
		}
	}

	upstream, err := net.DialTimeout("tcp", p.target, 10*time.Second)
	if err != nil {
		return // client sees a dropped connection: a fault in itself
	}
	p.track(upstream)
	defer p.untrack(upstream)

	// Client -> upstream runs uncut in the background for every action:
	// the request must reach the server even when its response will be
	// mangled (that is what makes resets on idempotent traffic safe to
	// retry and writes dangerous — which the schedule controls).
	var once sync.Once
	closeBoth := func() { once.Do(func() { client.Close(); upstream.Close() }) }
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		_, _ = io.Copy(upstream, clientIn)
		if tc, ok := upstream.(*net.TCPConn); ok {
			_ = tc.CloseWrite()
		}
	}()

	switch rule.Action {
	case Reset:
		_, _ = io.CopyN(client, upstream, rule.AfterBytes)
		p.stats.resets.Add(1)
		if tc, ok := client.(*net.TCPConn); ok {
			_ = tc.SetLinger(0) // unread data + close => RST
		}
		closeBoth()
	case Truncate:
		_, _ = io.CopyN(client, upstream, rule.AfterBytes)
		p.stats.truncated.Add(1)
		if tc, ok := client.(*net.TCPConn); ok {
			_ = tc.CloseWrite() // clean FIN mid-body
		}
		closeBoth()
	default: // Pass, Delay (after its sleep)
		p.stats.passed.Add(1)
		_, _ = io.Copy(client, upstream)
		closeBoth()
	}
}
