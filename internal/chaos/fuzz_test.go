package chaos

import (
	"fmt"
	"net"
	"testing"
	"time"
)

// FuzzChaosSchedule feeds arbitrary scripts to ParseSchedule and, for every
// accepted schedule, drives a real proxy session through it: whatever the
// script says, the proxy must answer (or sever) a deadline-bounded client
// and Close must return — scripted fault schedules never deadlock the
// proxy. Accepted schedules must also round-trip through String.
func FuzzChaosSchedule(f *testing.F) {
	f.Add("ok")
	f.Add("delay:5ms;reset:64@GET;trunc:16;hole:10ms")
	f.Add("hole@GET,DELETE;ok;reset:0")
	f.Add("delay:1ms@PUT;hole")
	f.Fuzz(func(t *testing.T, script string) {
		sched, err := ParseSchedule(script)
		if err != nil {
			return // rejected scripts are uninteresting
		}
		again, err := ParseSchedule(sched.String())
		if err != nil {
			t.Fatalf("String() of accepted schedule does not reparse: %q -> %q: %v",
				script, sched.String(), err)
		}
		if sched.String() != again.String() {
			t.Fatalf("schedule not a fixed point: %q -> %q", sched.String(), again.String())
		}

		// Clamp scripted waits so a fuzz iteration stays fast; the proxy's
		// liveness must not depend on the durations involved.
		sched.Seed = 1
		for i := range sched.Rules {
			if sched.Rules[i].Dur > 5*time.Millisecond {
				sched.Rules[i].Dur = 5 * time.Millisecond
			}
			if sched.Rules[i].AfterBytes > 1<<16 {
				sched.Rules[i].AfterBytes = 1 << 16
			}
		}

		// A minimal HTTP backend: read a little, answer, close.
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Skip("no loopback listener")
		}
		defer ln.Close()
		go func() {
			for {
				c, err := ln.Accept()
				if err != nil {
					return
				}
				go func(c net.Conn) {
					defer c.Close()
					_ = c.SetDeadline(time.Now().Add(time.Second))
					buf := make([]byte, 512)
					_, _ = c.Read(buf)
					fmt.Fprint(c, "HTTP/1.0 200 OK\r\nContent-Length: 2\r\n\r\nok")
				}(c)
			}
		}()

		p, err := Start(ln.Addr().String(), sched)
		if err != nil {
			t.Fatal(err)
		}
		// One client connection per schedule slot (bounded), each with a
		// hard deadline: blackholes and resets must surface as errors, not
		// hangs.
		conns := len(sched.Rules)
		if conns > 4 {
			conns = 4
		}
		for i := 0; i < conns; i++ {
			c, err := net.DialTimeout("tcp", p.Addr(), time.Second)
			if err != nil {
				break
			}
			_ = c.SetDeadline(time.Now().Add(250 * time.Millisecond))
			fmt.Fprint(c, "GET / HTTP/1.0\r\nHost: x\r\n\r\n")
			buf := make([]byte, 256)
			for {
				if _, err := c.Read(buf); err != nil {
					break
				}
			}
			c.Close()
		}

		closed := make(chan struct{})
		go func() { p.Close(); close(closed) }()
		select {
		case <-closed:
		case <-time.After(5 * time.Second):
			t.Fatalf("proxy Close deadlocked under schedule %q", sched.String())
		}
	})
}
