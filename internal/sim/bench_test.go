package sim

import (
	"testing"
	"time"

	"synapse/internal/benchutil"
)

// BenchmarkKernelPostPop is the event-queue micro: one handler post and
// one heap pop per op, on a warm kernel. The steady state must not
// allocate — PostHandler carries its arguments inline and the heap reuses
// its arena — so the committed allocs/op baseline is zero and benchguard
// fails any regression.
func BenchmarkKernelPostPop(b *testing.B) {
	k := New()
	k.Reserve(64)
	var sink int64
	h := Handler(func(a, _ int64) { sink += a })
	rec := benchutil.NewRecorder(256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.PostHandler(time.Duration(i), 0, h, int64(i), 0)
		e := k.h.pop()
		e.h(e.a, e.b)
		rec.Tick()
	}
	rec.Report(b)
	if sink < 0 {
		b.Fatal("unreachable")
	}
}

// BenchmarkKernelInstantDrain drains one 16-event instant per op through
// Run — the kernel's full dispatch loop (clock advance, priority order,
// per-instant hook), reusing one kernel so the heap arena stays warm.
func BenchmarkKernelInstantDrain(b *testing.B) {
	const events = 16
	k := New()
	k.Reserve(events)
	var sink int64
	h := Handler(func(a, _ int64) { sink += a })
	hook := func() { sink++ }
	rec := benchutil.NewRecorder(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := time.Duration(i)
		for j := 0; j < events; j++ {
			k.PostHandler(t, Priority(j%4), h, int64(j), 0)
		}
		k.Run(hook)
		rec.Tick()
	}
	rec.Report(b)
	if sink < 0 {
		b.Fatal("unreachable")
	}
}
