// Package sim is a small deterministic discrete-event simulation kernel:
// a virtual clock, an ordered event queue with stable tie-breaking, named
// substream derivation for seeded randomness, and pluggable metrics sinks.
//
// The kernel owns none of the models being simulated — it only decides
// *when* things happen. Callers post closures at virtual times with a
// priority; Run drains the queue one virtual instant at a time, executing
// every event scheduled for that instant in (priority, post-order) order
// before invoking the per-instant hook. That batching is what lets a
// scheduler built on top resolve an instant's decisions (e.g. placements)
// as one parallel batch while the timeline itself stays strictly serial
// and deterministic: the same posts always replay in the same order, at
// any worker count, on any host.
//
// The split mirrors how gem5-style simulators separate the event engine
// from the hardware models: internal/scenario compiles workload mixes and
// clusters *onto* this kernel instead of owning its own ad-hoc event loop.
package sim

import (
	"fmt"
	"time"
)

// Priority orders events scheduled at the same virtual instant: lower
// values run first. Callers define their own priority bands (e.g.
// completions before arrivals before pool mutations); within one band,
// events run in the order they were posted.
type Priority int

// MetricsSink observes the simulation as it advances. Emit delivers typed
// event values to every attached sink, in attach order, stamped with the
// kernel's current virtual time. Sinks run on the kernel's (single)
// timeline goroutine, so they need no locking and see a deterministic
// event sequence. Emitters may reuse one event value across calls (the
// zero-allocation pattern: emit a pointer to a scratch struct), so a sink
// that keeps an event beyond Observe must copy it.
type MetricsSink interface {
	Observe(t time.Duration, ev any)
}

// Handler is a pre-bound, allocation-free event callback: the two integer
// arguments travel inline in the heap entry, so posting one costs no heap
// allocation — unlike a closure, which boxes its captures on every Post.
// Callers bind a Handler once (typically a method value stored in a struct
// field) and pass per-event state through a and b.
type Handler func(a, b int64)

// entry is one scheduled event. Exactly one of fn and h is set: fn is the
// closure form (Post), h the pre-bound handler form (PostHandler) with its
// two argument words stored inline.
type entry struct {
	t    time.Duration
	prio Priority
	seq  uint64 // post order; the stable tie-break
	fn   func()
	h    Handler
	a, b int64
}

// entryHeap is a hand-rolled binary min-heap on (t, prio, seq), backed by a
// single value slice: entries live inline in one contiguous arena — no
// per-event box on the heap — and popped slots are zeroed and reused by
// subsequent pushes, so a warm kernel posts and pops events without
// touching the allocator at all. The scheduler posts and pops one entry per
// simulated event, so the heap also avoids container/heap's per-operation
// interface boxing.
type entryHeap []entry

func (h entryHeap) less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	if h[i].prio != h[j].prio {
		return h[i].prio < h[j].prio
	}
	return h[i].seq < h[j].seq
}

func (h *entryHeap) push(e entry) {
	*h = append(*h, e)
	q := *h
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

func (h *entryHeap) pop() entry {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = entry{} // release the closure
	*h = q[:n]
	q = q[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && q.less(l, min) {
			min = l
		}
		if r < n && q.less(r, min) {
			min = r
		}
		if min == i {
			break
		}
		q[i], q[min] = q[min], q[i]
		i = min
	}
	return top
}

// Kernel is the event engine. It is not safe for concurrent use: posts and
// sink callbacks all happen on the goroutine driving Run.
type Kernel struct {
	now     time.Duration
	h       entryHeap
	seq     uint64
	stopped bool
	sinks   []MetricsSink
}

// New returns a kernel with an empty queue at virtual time zero.
func New() *Kernel { return &Kernel{} }

// Now returns the current virtual time: zero before Run, the instant being
// processed during it, and the final instant after it.
func (k *Kernel) Now() time.Duration { return k.now }

// Len returns the number of scheduled events not yet executed.
func (k *Kernel) Len() int { return len(k.h) }

// Post schedules fn at virtual time t. Posting into the past is a
// programming error — virtual time never rewinds — and panics. Posting at
// the current instant is allowed and runs before the instant closes.
func (k *Kernel) Post(t time.Duration, prio Priority, fn func()) {
	if t < k.now {
		panic(fmt.Sprintf("sim: post at %v before now %v", t, k.now))
	}
	k.seq++
	k.h.push(entry{t: t, prio: prio, seq: k.seq, fn: fn})
}

// PostHandler schedules h(a, b) at virtual time t — the allocation-free
// form of Post. The handler and both argument words are stored inline in
// the heap entry, so the steady state of a scheduler that binds its
// handlers once (method values kept in struct fields) posts events without
// allocating. Ordering is identical to Post: handlers and closures share
// one (t, prio, post-order) timeline.
func (k *Kernel) PostHandler(t time.Duration, prio Priority, h Handler, a, b int64) {
	if t < k.now {
		panic(fmt.Sprintf("sim: post at %v before now %v", t, k.now))
	}
	k.seq++
	k.h.push(entry{t: t, prio: prio, seq: k.seq, h: h, a: a, b: b})
}

// Reserve grows the event heap's backing arena to hold at least n pending
// events without reallocating. Schedulers that know their event population
// up front (e.g. one arrival plus one completion per enumerated instance)
// call it once so the steady state never grows the heap.
func (k *Kernel) Reserve(n int) {
	if cap(k.h) < n {
		h := make(entryHeap, len(k.h), n)
		copy(h, k.h)
		k.h = h
	}
}

// Attach registers a metrics sink. Sinks observe in attach order.
func (k *Kernel) Attach(s MetricsSink) { k.sinks = append(k.sinks, s) }

// Emit delivers ev to every attached sink at the current virtual time.
func (k *Kernel) Emit(ev any) {
	for _, s := range k.sinks {
		s.Observe(k.now, ev)
	}
}

// Stop makes Run return before opening the next instant — the abort path
// when an event handler hits an unrecoverable error. The current instant
// still finishes (events already popped keep their turn).
func (k *Kernel) Stop() { k.stopped = true }

// Run drains the queue: it advances the clock to the earliest scheduled
// instant, executes every event at that instant in (priority, post-order)
// order — including events posted *at* the instant while it is being
// processed — and then calls afterInstant (if non-nil) before moving on.
// Events afterInstant posts at the current instant reopen it. Run returns
// when the queue is empty or Stop is called.
func (k *Kernel) Run(afterInstant func()) {
	for !k.stopped && len(k.h) > 0 {
		now := k.h[0].t
		k.now = now
		for len(k.h) > 0 && k.h[0].t == now {
			e := k.h.pop()
			if e.h != nil {
				e.h(e.a, e.b)
			} else {
				e.fn()
			}
		}
		if afterInstant != nil {
			afterInstant()
		}
	}
}
