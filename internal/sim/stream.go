package sim

import (
	"hash/fnv"
	"strconv"
)

// Stream derives a named substream seed from a root seed. Every
// independent source of randomness in a simulation — each workload's
// arrival/jitter draws, the placement policy, future noise models — takes
// its seed from a distinct stream name ("workload/md", "cluster", ...), so
// adding or reordering streams never perturbs the others and two streams
// never alias just because their owners share a seed.
//
// The name is hashed with FNV-1a, folded into the seed, and passed through
// the SplitMix64 finalizer so that related inputs (same seed with similar
// names, or consecutive seeds with the same name) land far apart even
// though the downstream generator is seeded with this single word.
func Stream(seed uint64, name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	x := seed ^ h.Sum64()
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// StreamN derives the i'th member of an indexed substream family: exactly
// Stream(seed, prefix+"/"+i). Families are how one logical stream fans out
// into an enumerable set — "shard/0", "shard/1", ... — without the members
// aliasing each other or any singleton stream.
func StreamN(seed uint64, prefix string, i int) uint64 {
	return Stream(seed, prefix+"/"+strconv.Itoa(i))
}

// Streams enumerates the first n members of an indexed substream family, in
// index order. The slice is a pure function of (seed, prefix, n): the same
// inputs yield the same keys on every host, which is what lets distributed
// participants agree on a partition by exchanging nothing but (seed, n).
func Streams(seed uint64, prefix string, n int) []uint64 {
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = StreamN(seed, prefix, i)
	}
	return keys
}
