package sim

import "hash/fnv"

// Stream derives a named substream seed from a root seed. Every
// independent source of randomness in a simulation — each workload's
// arrival/jitter draws, the placement policy, future noise models — takes
// its seed from a distinct stream name ("workload/md", "cluster", ...), so
// adding or reordering streams never perturbs the others and two streams
// never alias just because their owners share a seed.
//
// The name is hashed with FNV-1a, folded into the seed, and passed through
// the SplitMix64 finalizer so that related inputs (same seed with similar
// names, or consecutive seeds with the same name) land far apart even
// though the downstream generator is seeded with this single word.
func Stream(seed uint64, name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	x := seed ^ h.Sum64()
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
