package sim

import (
	"fmt"
	"testing"

	"synapse/internal/stats"
)

// TestStreamCollisions: 10k distinct workload names (realistic shapes:
// short words, numbered variants, near-duplicates) must derive 10k
// distinct stream seeds, and none may collide with the other named
// streams a scenario uses. This is the contract that replaced the ad-hoc
// seed^hash^index derivation: uniqueness now rests on the stream name
// alone.
func TestStreamCollisions(t *testing.T) {
	const seed = 42
	seen := make(map[uint64]string, 10001)
	add := func(name string) {
		s := Stream(seed, name)
		if prev, ok := seen[s]; ok {
			t.Fatalf("stream collision: %q and %q both derive %#x", prev, name, s)
		}
		seen[s] = name
	}
	bases := []string{"md", "io", "sleep", "train", "serve", "etl", "sim", "w"}
	for i := 0; i < 10000; i++ {
		add(fmt.Sprintf("workload/%s-%d", bases[i%len(bases)], i))
	}
	add("cluster")
	add("workload/cluster") // prefixing must separate namespaces
}

// TestStreamDecorrelates: consecutive seeds with the same name, and the
// same seed with near-identical names, must still produce generators whose
// first draws differ — the finalizer has to break the linear structure of
// seed^hash.
func TestStreamDecorrelates(t *testing.T) {
	a := stats.NewRNG(Stream(1, "workload/md")).Float64()
	b := stats.NewRNG(Stream(2, "workload/md")).Float64()
	c := stats.NewRNG(Stream(1, "workload/md2")).Float64()
	if a == b || a == c || b == c {
		t.Fatalf("correlated first draws: %v %v %v", a, b, c)
	}
}

// TestStreamFamily: StreamN must be exactly the named-stream derivation of
// "prefix/i" (distributed participants reconstruct members independently
// from (seed, prefix, i) alone), Streams must enumerate in index order, and
// family members must not alias each other, their prefix, or other seeds'
// families.
func TestStreamFamily(t *testing.T) {
	const seed = 42
	keys := Streams(seed, "shard", 64)
	seen := make(map[uint64]int, len(keys))
	for i, k := range keys {
		if want := Stream(seed, fmt.Sprintf("shard/%d", i)); k != want {
			t.Fatalf("Streams[%d] = %#x, want Stream(seed, \"shard/%d\") = %#x", i, k, i, want)
		}
		if k != StreamN(seed, "shard", i) {
			t.Fatalf("Streams[%d] disagrees with StreamN", i)
		}
		if prev, ok := seen[k]; ok {
			t.Fatalf("family members %d and %d alias: %#x", prev, i, k)
		}
		seen[k] = i
		if k == Stream(seed, "shard") {
			t.Fatalf("member %d aliases the bare prefix stream", i)
		}
		if k == StreamN(seed+1, "shard", i) {
			t.Fatalf("member %d aliases another seed's family", i)
		}
	}
	if len(Streams(seed, "shard", 0)) != 0 {
		t.Fatal("Streams(seed, prefix, 0) must be empty")
	}
}

// TestStreamStable: the derivation is part of the (spec, seed) determinism
// contract — pin a few values so an accidental change fails loudly instead
// of silently remapping every seeded scenario.
func TestStreamStable(t *testing.T) {
	if a, b := Stream(7, "workload/md"), Stream(7, "workload/md"); a != b {
		t.Fatalf("Stream is not a pure function: %#x vs %#x", a, b)
	}
	if Stream(7, "workload/md") == Stream(7, "cluster") {
		t.Fatal("distinct names derived the same stream")
	}
	if Stream(7, "workload/md") == Stream(8, "workload/md") {
		t.Fatal("distinct seeds derived the same stream")
	}
}
