package sim

import (
	"testing"
	"time"
)

// TestRunOrder: events execute in (time, priority, post-order) order
// regardless of post order.
func TestRunOrder(t *testing.T) {
	k := New()
	var got []int
	rec := func(id int) func() { return func() { got = append(got, id) } }
	k.Post(2*time.Second, 1, rec(5))
	k.Post(time.Second, 1, rec(2))
	k.Post(time.Second, 0, rec(1))
	k.Post(2*time.Second, 0, rec(3))
	k.Post(2*time.Second, 0, rec(4)) // same (t, prio): post order breaks the tie
	k.Run(nil)
	want := []int{1, 2, 3, 4, 5}
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			t.Fatalf("execution order = %v, want %v", got, want)
		}
	}
	if k.Now() != 2*time.Second {
		t.Fatalf("final now = %v, want 2s", k.Now())
	}
}

// TestInstantBatching: the per-instant hook runs once per distinct virtual
// time, after every event of that instant — including events posted at the
// current instant mid-processing (a completion chaining an arrival at the
// same time must land in the same batch).
func TestInstantBatching(t *testing.T) {
	k := New()
	var events, instants []time.Duration
	k.Post(time.Second, 0, func() {
		events = append(events, k.Now())
		k.Post(time.Second, 1, func() { events = append(events, k.Now()) }) // same instant
	})
	k.Post(3*time.Second, 0, func() { events = append(events, k.Now()) })
	k.Run(func() { instants = append(instants, k.Now()) })
	if len(events) != 3 {
		t.Fatalf("events = %v", events)
	}
	if len(instants) != 2 || instants[0] != time.Second || instants[1] != 3*time.Second {
		t.Fatalf("instants = %v, want [1s 3s]", instants)
	}
}

// TestAfterInstantReopens: events the hook posts at the current instant
// reopen it — the hook runs again at the same time before the clock moves.
func TestAfterInstantReopens(t *testing.T) {
	k := New()
	k.Post(time.Second, 0, func() {})
	hooks := 0
	k.Run(func() {
		hooks++
		if hooks == 1 {
			k.Post(k.Now(), 0, func() {}) // zero-duration follow-up work
		}
	})
	if hooks != 2 {
		t.Fatalf("hook ran %d times, want 2 (instant reopened)", hooks)
	}
	if k.Now() != time.Second {
		t.Fatalf("now = %v, want 1s", k.Now())
	}
}

func TestPostIntoPastPanics(t *testing.T) {
	k := New()
	k.Post(2*time.Second, 0, func() {
		defer func() {
			if recover() == nil {
				t.Error("posting into the past did not panic")
			}
		}()
		k.Post(time.Second, 0, func() {})
	})
	k.Run(nil)
}

type recordSink struct {
	ts  []time.Duration
	evs []any
}

func (s *recordSink) Observe(t time.Duration, ev any) {
	s.ts = append(s.ts, t)
	s.evs = append(s.evs, ev)
}

// TestEmitReachesSinksInOrder: Emit stamps the current instant and fans
// out to sinks in attach order.
func TestEmitReachesSinksInOrder(t *testing.T) {
	k := New()
	a, b := &recordSink{}, &recordSink{}
	k.Attach(a)
	k.Attach(b)
	k.Post(time.Second, 0, func() { k.Emit("one") })
	k.Post(2*time.Second, 0, func() { k.Emit("two") })
	k.Run(nil)
	for _, s := range []*recordSink{a, b} {
		if len(s.evs) != 2 || s.evs[0] != "one" || s.evs[1] != "two" {
			t.Fatalf("sink events = %v", s.evs)
		}
		if s.ts[0] != time.Second || s.ts[1] != 2*time.Second {
			t.Fatalf("sink times = %v", s.ts)
		}
	}
}

// TestDeterministicReplay: the same post sequence drains identically twice.
func TestDeterministicReplay(t *testing.T) {
	run := func() []int {
		k := New()
		var got []int
		for i := 0; i < 100; i++ {
			i := i
			// A spread of colliding times and priorities.
			k.Post(time.Duration(i%7)*time.Second, Priority(i%3), func() { got = append(got, i) })
		}
		k.Run(nil)
		return got
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
