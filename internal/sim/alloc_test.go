package sim

import (
	"testing"
	"time"
)

// TestPostPopAllocFree pins the kernel's allocation-free contract: after
// Reserve sized the arena and one warm-up lap filled it, posting and
// draining events must not touch the allocator at all.
func TestPostPopAllocFree(t *testing.T) {
	k := New()
	k.Reserve(64)
	var sink int64
	h := Handler(func(a, _ int64) { sink += a })
	tick := time.Duration(0)
	lap := func() {
		for j := 0; j < 32; j++ {
			k.PostHandler(tick, Priority(j%4), h, int64(j), 0)
		}
		k.Run(nil)
		tick++
	}
	lap() // warm-up: materializes nothing the steady state re-creates
	if allocs := testing.AllocsPerRun(100, lap); allocs != 0 {
		t.Fatalf("kernel post/drain allocated %.1f objects per lap, want 0", allocs)
	}
}

// TestPostHandlerOrdering checks that handlers and closures share one
// (t, prio, post-order) timeline: interleaved Post and PostHandler calls
// replay in exactly the order the ordering rule dictates.
func TestPostHandlerOrdering(t *testing.T) {
	k := New()
	var got []int
	add := func(v int) { got = append(got, v) }
	h := Handler(func(a, _ int64) { add(int(a)) })
	k.Post(2*time.Second, 0, func() { add(4) })
	k.PostHandler(time.Second, 1, h, 2, 0)
	k.Post(time.Second, 1, func() { add(3) }) // same (t, prio): post order
	k.PostHandler(time.Second, 0, h, 1, 0)    // lower prio wins the instant
	k.Run(nil)
	want := []int{1, 2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

// TestReserve checks Reserve grows capacity without disturbing pending
// events.
func TestReserve(t *testing.T) {
	k := New()
	var got []int
	h := Handler(func(a, _ int64) { got = append(got, int(a)) })
	k.PostHandler(time.Second, 0, h, 1, 0)
	k.Reserve(128)
	if c := cap(k.h); c < 128 {
		t.Fatalf("cap = %d after Reserve(128)", c)
	}
	k.PostHandler(2*time.Second, 0, h, 2, 0)
	k.Run(nil)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("got %v, want [1 2]", got)
	}
}
