// Package benchutil reports the shared custom metrics of the
// BenchmarkKernel* micro-benchmark suite: every bench in the suite emits
// ops/s (primary, higher is better) and p99-ns (chunked tail latency,
// lower is better) next to testing's built-in allocs/op, so a single
// benchguard invocation gates throughput, allocation and tail latency for
// the whole suite against the committed BENCH_kernel.json snapshot.
package benchutil

import (
	"sort"
	"testing"
	"time"

	"synapse/internal/stats"
)

// Recorder samples per-op latency in fixed-size chunks: timing every op
// individually would cost more than the ops under test (a kernel post/pop
// is tens of nanoseconds), so the recorder times whole chunks and keeps
// the chunk's mean ns/op as one sample. The p99 over those samples is a
// stable tail proxy that still catches the regressions the gate is for —
// a slow path growing onto the hot path shifts every chunk it lands in.
type Recorder struct {
	chunk   int
	ops     int
	last    time.Time
	samples []float64 // mean ns/op per chunk; first chunk is warm-up
}

// NewRecorder returns a recorder that samples every chunk ops.
func NewRecorder(chunk int) *Recorder {
	if chunk < 1 {
		chunk = 1
	}
	return &Recorder{chunk: chunk, samples: make([]float64, 0, 1024)}
}

// Tick records one completed op. Call it once per iteration of the
// benchmark loop.
func (r *Recorder) Tick() {
	r.ops++
	if r.ops < r.chunk {
		return
	}
	now := time.Now()
	if !r.last.IsZero() {
		r.samples = append(r.samples, float64(now.Sub(r.last).Nanoseconds())/float64(r.chunk))
	}
	r.last = now
	r.ops = 0
}

// Report emits the suite's custom metrics: ops/s over the benchmark's
// whole timed window and the p99 of the chunked latency samples.
func (r *Recorder) Report(b *testing.B) {
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(b.N)/secs, "ops/s")
	}
	if len(r.samples) > 0 {
		sort.Float64s(r.samples)
		b.ReportMetric(stats.SortedPercentile(r.samples, 99), "p99-ns")
	}
}
