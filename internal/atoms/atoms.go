// Package atoms implements Synapse's emulation atoms (paper §3.3, §4.2):
// fine-grained, tunable consumers of one system resource each. The emulator
// feeds profile samples to the atoms; within a sample every atom runs
// concurrently, and the sample ends when the last atom finishes.
//
// Each atom exists in two backends sharing one interface: simulated atoms
// model their consumption against a machine.Model (deterministic, used by
// every experiment), and real atoms actually consume host resources (burn
// CPU with internal/kernels, read/write files, allocate memory, move bytes
// over loopback sockets).
package atoms

import (
	"context"
	"fmt"
	"math"
	"time"

	"synapse/internal/machine"
	"synapse/internal/perfcount"
)

// DefaultIOBlock is the static I/O granularity used when the emulation is
// not configured otherwise. The paper's default atoms use block sizes "not
// related to the recorded profiles" (§4.2).
const DefaultIOBlock = 1 << 20

// Request is the resource consumption demanded of the atoms by one profile
// sample.
type Request struct {
	Cycles float64
	FLOPs  float64

	ReadBytes  float64
	WriteBytes float64
	ReadOps    float64 // profiled operation counts (optional)
	WriteOps   float64

	AllocBytes float64
	FreeBytes  float64

	NetReadBytes  float64
	NetWriteBytes float64
}

// IsZero reports whether the request demands nothing.
func (r Request) IsZero() bool { return r == Request{} }

// Result is what an atom consumed and how long it took.
type Result struct {
	// Dur is the modeled (sim) or measured (real) time the consumption
	// took in the atom's thread.
	Dur time.Duration
	// Consumed are the resources actually consumed, which may exceed the
	// request (kernel calibration bias, chunk granularity).
	Consumed perfcount.Counters
}

// Atom consumes one type of system resource.
type Atom interface {
	// Name identifies the atom ("compute", "memory", "storage", "network").
	Name() string
	// Consume executes (or models) the atom's share of the request.
	Consume(ctx context.Context, req Request) (Result, error)
}

// Config tunes a set of atoms. The tunability knobs mirror the paper's:
// kernel selection (E.3), I/O block sizes and target filesystem (E.5),
// thread/process parallelism (E.4).
type Config struct {
	// Machine models the resource being emulated on (required for
	// simulated atoms; used by real atoms only for its nominal clock).
	Machine *machine.Model
	// Kernel selects the compute kernel ("asm" default, "c", user ones).
	Kernel string
	// ReadBlock/WriteBlock set static I/O granularity in bytes
	// (DefaultIOBlock when zero).
	ReadBlock, WriteBlock int64
	// UseProfiledBlocks derives I/O granularity from the profiled
	// operation counts when available, instead of the static blocks —
	// the blktrace-informed mode the paper plans (§6).
	UseProfiledBlocks bool
	// Filesystem overrides the machine's default filesystem.
	Filesystem string
	// NetBlock sets network write granularity.
	NetBlock int64
	// Workers/Mode inject parallelism into the compute emulation
	// (paper E.4). Workers <= 1 means serial.
	Workers int
	Mode    machine.Mode
	// Load adds artificial background CPU load (paper's stress mode,
	// §4.3: "Synapse is able to force an artificial CPU, disk and memory
	// load onto the system while emulating"). Fraction in [0, 1).
	Load float64
	// DiskLoad adds artificial background storage load: I/O slows by
	// 1/(1-DiskLoad).
	DiskLoad float64
	// MemLoad adds artificial background memory-bandwidth load.
	MemLoad float64
}

// kernelName returns the configured kernel, defaulting to the paper's
// default ASM kernel.
func (c *Config) kernelName() string {
	if c.Kernel == "" {
		return machine.KernelASM
	}
	return c.Kernel
}

func (c *Config) readBlock() int64 {
	if c.ReadBlock > 0 {
		return c.ReadBlock
	}
	return DefaultIOBlock
}

func (c *Config) writeBlock() int64 {
	if c.WriteBlock > 0 {
		return c.WriteBlock
	}
	return DefaultIOBlock
}

// Validate reports the first problem with the configuration, or nil.
func (c *Config) Validate() error {
	if c.Machine == nil {
		return fmt.Errorf("atoms: config needs a machine model")
	}
	if c.Workers < 0 {
		return fmt.Errorf("atoms: negative workers")
	}
	for _, l := range []struct {
		name string
		v    float64
	}{{"load", c.Load}, {"disk load", c.DiskLoad}, {"memory load", c.MemLoad}} {
		if l.v != 0 && (l.v < 0 || l.v >= 1) {
			return fmt.Errorf("atoms: %s %g outside [0,1)", l.name, l.v)
		}
	}
	if _, err := c.Machine.Kernel(c.kernelName()); err != nil {
		return err
	}
	if _, err := c.Machine.Filesystem(c.Filesystem); err != nil {
		return err
	}
	return nil
}

// --- Simulated atoms ---

// SimCompute models the compute atom: it consumes the requested cycles in
// whole kernel chunks, biased by the kernel's calibration error, and spreads
// the work across workers according to the machine's threading model.
//
// The atom carries a surplus across samples: dispatching whole chunks
// overshoots each sample's target, and the driver discounts the overshoot
// from the next sample (the emulator tracks cumulative consumption, like the
// paper's tight atom-feeding loop). Whole-run consumption therefore exceeds
// the directed amount by at most one chunk plus the calibration bias, which
// is exactly the E.3 error shape: decaying with problem size, converging to
// the bias.
type SimCompute struct {
	cfg *Config
	kp  machine.KernelPerf
	// surplus is work (in the kernel's own estimated cycles) already
	// performed beyond the cumulative directed target.
	surplus float64
}

// NewSimCompute builds the simulated compute atom.
func NewSimCompute(cfg *Config) (*SimCompute, error) {
	kp, err := cfg.Machine.Kernel(cfg.kernelName())
	if err != nil {
		return nil, err
	}
	return &SimCompute{cfg: cfg, kp: kp}, nil
}

// Name implements Atom.
func (a *SimCompute) Name() string { return "compute" }

// Consume implements Atom.
func (a *SimCompute) Consume(ctx context.Context, req Request) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	return a.consume(req), nil
}

// ConsumeBatch implements BatchConsumer: the whole run of requests is modeled
// with one context check and no per-sample interface dispatch.
func (a *SimCompute) ConsumeBatch(ctx context.Context, reqs []Request, out []Result) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	for i := range reqs {
		out[i] = a.consume(reqs[i])
	}
	return nil
}

// consume is the atom's model, shared by the per-sample and batched paths so
// both produce bit-identical results.
func (a *SimCompute) consume(req Request) Result {
	if req.Cycles <= 0 && req.FLOPs <= 0 {
		return Result{}
	}
	// Discount work already performed beyond earlier targets.
	target := req.Cycles - a.surplus
	if target <= 0 {
		a.surplus -= req.Cycles
		return Result{Consumed: perfcount.Counters{FLOPs: req.FLOPs}}
	}
	chunk := a.kp.Chunk()
	chunks := math.Ceil(target / chunk)
	if chunks < 1 {
		chunks = 1
	}
	a.surplus = chunks*chunk - target
	consumed := chunks * chunk * a.kp.CalibBias
	dur := a.cfg.Machine.ComputeTime(consumed)
	if a.cfg.Load > 0 {
		dur = time.Duration(float64(dur) / (1 - a.cfg.Load))
	}
	if a.cfg.Workers > 1 && a.cfg.Mode != machine.ModeSerial {
		// Per-sample work distribution; the one-time worker-pool setup
		// cost is accounted by the emulator's startup, not per sample.
		dur = a.cfg.Machine.Threading.ScaleWork(dur, a.cfg.Workers, a.cfg.Machine.Cores, a.cfg.Mode)
	}
	c := perfcount.Counters{
		Cycles:       consumed,
		Instructions: consumed * a.kp.IPC,
		FLOPs:        req.FLOPs,
	}
	return Result{Dur: dur, Consumed: c}
}

// SimStorage models the storage atom: block-granular reads and writes
// against the configured filesystem.
type SimStorage struct {
	cfg *Config
	fs  machine.FSPerf
}

// NewSimStorage builds the simulated storage atom.
func NewSimStorage(cfg *Config) (*SimStorage, error) {
	fs, err := cfg.Machine.Filesystem(cfg.Filesystem)
	if err != nil {
		return nil, err
	}
	return &SimStorage{cfg: cfg, fs: fs}, nil
}

// Name implements Atom.
func (a *SimStorage) Name() string { return "storage" }

// blockFor derives the effective block size for a transfer.
func (a *SimStorage) blockFor(bytes, ops float64, static int64) int64 {
	if a.cfg.UseProfiledBlocks && ops > 0 && bytes > 0 {
		return int64(bytes / ops)
	}
	return static
}

// Consume implements Atom.
func (a *SimStorage) Consume(ctx context.Context, req Request) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	return a.consume(req), nil
}

// ConsumeBatch implements BatchConsumer.
func (a *SimStorage) ConsumeBatch(ctx context.Context, reqs []Request, out []Result) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	for i := range reqs {
		out[i] = a.consume(reqs[i])
	}
	return nil
}

// consume is the atom's model, shared by the per-sample and batched paths.
func (a *SimStorage) consume(req Request) Result {
	if req.ReadBytes <= 0 && req.WriteBytes <= 0 {
		return Result{}
	}
	rb := a.blockFor(req.ReadBytes, req.ReadOps, a.cfg.readBlock())
	wb := a.blockFor(req.WriteBytes, req.WriteOps, a.cfg.writeBlock())
	dur := a.fs.ReadTime(int64(req.ReadBytes), rb) + a.fs.WriteTime(int64(req.WriteBytes), wb)
	if a.cfg.DiskLoad > 0 {
		dur = time.Duration(float64(dur) / (1 - a.cfg.DiskLoad))
	}
	c := perfcount.Counters{
		ReadBytes:  req.ReadBytes,
		WriteBytes: req.WriteBytes,
	}
	if req.ReadBytes > 0 && rb > 0 {
		c.ReadOps = math.Ceil(req.ReadBytes / float64(rb))
	}
	if req.WriteBytes > 0 && wb > 0 {
		c.WriteOps = math.Ceil(req.WriteBytes / float64(wb))
	}
	return Result{Dur: dur, Consumed: c}
}

// SimMemory models the memory atom (malloc/free traffic).
type SimMemory struct {
	cfg *Config
}

// NewSimMemory builds the simulated memory atom.
func NewSimMemory(cfg *Config) *SimMemory { return &SimMemory{cfg: cfg} }

// Name implements Atom.
func (a *SimMemory) Name() string { return "memory" }

// Consume implements Atom.
func (a *SimMemory) Consume(ctx context.Context, req Request) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	return a.consume(req), nil
}

// ConsumeBatch implements BatchConsumer.
func (a *SimMemory) ConsumeBatch(ctx context.Context, reqs []Request, out []Result) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	for i := range reqs {
		out[i] = a.consume(reqs[i])
	}
	return nil
}

// consume is the atom's model, shared by the per-sample and batched paths.
func (a *SimMemory) consume(req Request) Result {
	total := req.AllocBytes + req.FreeBytes
	if total <= 0 {
		return Result{}
	}
	dur := a.cfg.Machine.MemTime(int64(total))
	if a.cfg.MemLoad > 0 {
		dur = time.Duration(float64(dur) / (1 - a.cfg.MemLoad))
	}
	return Result{
		Dur:      dur,
		Consumed: perfcount.Counters{AllocBytes: req.AllocBytes, FreeBytes: req.FreeBytes},
	}
}

// SimNetwork models the network atom.
type SimNetwork struct {
	cfg *Config
}

// NewSimNetwork builds the simulated network atom.
func NewSimNetwork(cfg *Config) *SimNetwork { return &SimNetwork{cfg: cfg} }

// Name implements Atom.
func (a *SimNetwork) Name() string { return "network" }

// Consume implements Atom.
func (a *SimNetwork) Consume(ctx context.Context, req Request) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	return a.consume(req), nil
}

// ConsumeBatch implements BatchConsumer.
func (a *SimNetwork) ConsumeBatch(ctx context.Context, reqs []Request, out []Result) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	for i := range reqs {
		out[i] = a.consume(reqs[i])
	}
	return nil
}

// consume is the atom's model, shared by the per-sample and batched paths.
func (a *SimNetwork) consume(req Request) Result {
	total := req.NetReadBytes + req.NetWriteBytes
	if total <= 0 {
		return Result{}
	}
	dur := a.cfg.Machine.NetTime(int64(total), a.cfg.NetBlock)
	return Result{
		Dur:      dur,
		Consumed: perfcount.Counters{NetReadBytes: req.NetReadBytes, NetWriteBytes: req.NetWriteBytes},
	}
}

// Reset clears the cross-sample surplus, restoring the just-built state.
func (a *SimCompute) Reset() { a.surplus = 0 }

// ResetSim restores a simulated atom set to its just-built state, so a
// pooled set replays as if freshly constructed. Only the compute atom
// carries cross-sample state (its chunk-overshoot surplus); the other
// simulated atoms are pure functions of their config.
func ResetSim(set []Atom) {
	for _, a := range set {
		if c, ok := a.(*SimCompute); ok {
			c.Reset()
		}
	}
}

// NewSimSet builds the full simulated atom set for a configuration.
func NewSimSet(cfg *Config) ([]Atom, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	compute, err := NewSimCompute(cfg)
	if err != nil {
		return nil, err
	}
	storage, err := NewSimStorage(cfg)
	if err != nil {
		return nil, err
	}
	return []Atom{compute, storage, NewSimMemory(cfg), NewSimNetwork(cfg)}, nil
}
