package atoms

import (
	"context"
	"fmt"
)

// BatchConsumer is the optional fast path of Atom: process a run of requests
// with a single call, writing each request's result into the matching index
// of out. Requests are consumed strictly in order — stateful atoms (the
// compute atom's chunk surplus) must evolve exactly as they would under
// equivalent sequential Consume calls, so the batched and per-sample replay
// paths produce bit-identical reports.
//
// All simulated atoms implement BatchConsumer; real atoms do not (their
// consumption is paced by the host, one sample at a time).
type BatchConsumer interface {
	ConsumeBatch(ctx context.Context, reqs []Request, out []Result) error
}

// ConsumeBatch feeds reqs through the atom, using its batch fast path when
// implemented and degrading to per-request Consume calls otherwise. out must
// be at least as long as reqs.
func ConsumeBatch(ctx context.Context, a Atom, reqs []Request, out []Result) error {
	if len(out) < len(reqs) {
		return fmt.Errorf("atoms: batch output %d shorter than input %d", len(out), len(reqs))
	}
	if b, ok := a.(BatchConsumer); ok {
		return b.ConsumeBatch(ctx, reqs, out)
	}
	for i := range reqs {
		res, err := a.Consume(ctx, reqs[i])
		if err != nil {
			return err
		}
		out[i] = res
	}
	return nil
}
