package atoms

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"synapse/internal/kernels"
	"synapse/internal/machine"
	"synapse/internal/netem"
	"synapse/internal/perfcount"
)

// RealCompute burns host CPU with an actual kernel from internal/kernels,
// self-calibrated at construction — the real counterpart of the paper's
// C/assembly kernels.
type RealCompute struct {
	cfg *Config
	k   kernels.Kernel
	cal kernels.Calibration
}

// NewRealCompute instantiates and calibrates the configured kernel.
func NewRealCompute(cfg *Config) (*RealCompute, error) {
	k, err := kernels.New(cfg.kernelName())
	if err != nil {
		return nil, err
	}
	cal := kernels.Calibrate(k, 20*time.Millisecond)
	return &RealCompute{cfg: cfg, k: k, cal: cal}, nil
}

// Name implements Atom.
func (a *RealCompute) Name() string { return "compute" }

// Consume implements Atom.
func (a *RealCompute) Consume(ctx context.Context, req Request) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	if req.Cycles <= 0 {
		return Result{}, nil
	}
	clockHz := a.cfg.Machine.ClockHz
	start := time.Now()
	var iters int
	if a.cfg.Workers > 1 && a.cfg.Mode == machine.ModeOpenMP {
		sec := req.Cycles / clockHz
		total := int(sec / a.cal.SecPerIter)
		if total < 1 {
			total = 1
		}
		if err := kernels.RunParallel(a.k.Name(), total, a.cfg.Workers); err != nil {
			return Result{}, err
		}
		iters = total
	} else {
		iters = kernels.ConsumeCycles(a.k, a.cal, req.Cycles, clockHz)
	}
	el := time.Since(start)
	return Result{
		Dur: el,
		Consumed: perfcount.Counters{
			Cycles: el.Seconds() * clockHz,
			FLOPs:  float64(iters) * a.k.FLOPsPerIter(),
		},
	}, nil
}

// RealStorage performs actual file I/O in a scratch directory with the
// configured block sizes.
type RealStorage struct {
	cfg  *Config
	dir  string
	file string
	seq  int
}

// NewRealStorage prepares a scratch directory for the atom's files.
func NewRealStorage(cfg *Config, dir string) (*RealStorage, error) {
	if dir == "" {
		d, err := os.MkdirTemp("", "synapse-storage-")
		if err != nil {
			return nil, fmt.Errorf("atoms: scratch dir: %w", err)
		}
		dir = d
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("atoms: scratch dir: %w", err)
	}
	return &RealStorage{cfg: cfg, dir: dir, file: filepath.Join(dir, "atom.dat")}, nil
}

// Name implements Atom.
func (a *RealStorage) Name() string { return "storage" }

// Dir exposes the scratch directory (for cleanup by the owner).
func (a *RealStorage) Dir() string { return a.dir }

// Consume implements Atom.
func (a *RealStorage) Consume(ctx context.Context, req Request) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	if req.ReadBytes <= 0 && req.WriteBytes <= 0 {
		return Result{}, nil
	}
	start := time.Now()
	var c perfcount.Counters
	if req.WriteBytes > 0 {
		n, ops, err := a.write(int64(req.WriteBytes), a.cfg.writeBlock())
		if err != nil {
			return Result{}, err
		}
		c.WriteBytes, c.WriteOps = float64(n), float64(ops)
	}
	if req.ReadBytes > 0 {
		n, ops, err := a.read(int64(req.ReadBytes), a.cfg.readBlock())
		if err != nil {
			return Result{}, err
		}
		c.ReadBytes, c.ReadOps = float64(n), float64(ops)
	}
	return Result{Dur: time.Since(start), Consumed: c}, nil
}

// write appends total bytes in block-sized operations, rotating files so the
// scratch file does not grow unboundedly across samples.
func (a *RealStorage) write(total, block int64) (written int64, ops int64, err error) {
	a.seq++
	name := fmt.Sprintf("%s.%d", a.file, a.seq%4)
	f, err := os.Create(name)
	if err != nil {
		return 0, 0, fmt.Errorf("atoms: create: %w", err)
	}
	defer f.Close()
	buf := make([]byte, min64(block, total))
	for i := range buf {
		buf[i] = byte(i)
	}
	remaining := total
	for remaining > 0 {
		n := min64(int64(len(buf)), remaining)
		w, err := f.Write(buf[:n])
		written += int64(w)
		ops++
		if err != nil {
			return written, ops, fmt.Errorf("atoms: write: %w", err)
		}
		remaining -= int64(w)
	}
	if err := f.Sync(); err != nil {
		// Sync failures on exotic filesystems degrade to unsynced writes.
		_ = err
	}
	return written, ops, nil
}

// read reads total bytes in block-sized operations from the most recent
// scratch file, wrapping around as needed.
func (a *RealStorage) read(total, block int64) (read int64, ops int64, err error) {
	name := fmt.Sprintf("%s.%d", a.file, a.seq%4)
	f, err := os.Open(name)
	if os.IsNotExist(err) {
		// Nothing written yet: materialise a file to read.
		if _, _, werr := a.write(min64(total, 4<<20), block); werr != nil {
			return 0, 0, werr
		}
		name = fmt.Sprintf("%s.%d", a.file, a.seq%4)
		f, err = os.Open(name)
	}
	if err != nil {
		return 0, 0, fmt.Errorf("atoms: open: %w", err)
	}
	defer f.Close()
	buf := make([]byte, min64(block, total))
	remaining := total
	for remaining > 0 {
		n := min64(int64(len(buf)), remaining)
		r, err := f.Read(buf[:n])
		if r > 0 {
			read += int64(r)
			remaining -= int64(r)
			ops++
		}
		if err != nil {
			// EOF: wrap around.
			if _, serr := f.Seek(0, 0); serr != nil {
				return read, ops, fmt.Errorf("atoms: seek: %w", serr)
			}
		}
	}
	return read, ops, nil
}

// RealMemory allocates and touches actual memory.
type RealMemory struct {
	cfg  *Config
	held [][]byte
}

// NewRealMemory builds the real memory atom.
func NewRealMemory(cfg *Config) *RealMemory { return &RealMemory{cfg: cfg} }

// Name implements Atom.
func (a *RealMemory) Name() string { return "memory" }

// Consume implements Atom.
func (a *RealMemory) Consume(ctx context.Context, req Request) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	if req.AllocBytes <= 0 && req.FreeBytes <= 0 {
		return Result{}, nil
	}
	start := time.Now()
	if req.AllocBytes > 0 {
		// Cap single allocations to keep the emulation robust on small
		// hosts; the modeled amount is still accounted.
		n := min64(int64(req.AllocBytes), 256<<20)
		buf := make([]byte, n)
		// Touch pages so the allocation is resident.
		for i := int64(0); i < n; i += 4096 {
			buf[i] = byte(i)
		}
		a.held = append(a.held, buf)
	}
	if req.FreeBytes > 0 {
		freed := int64(0)
		for freed < int64(req.FreeBytes) && len(a.held) > 0 {
			freed += int64(len(a.held[0]))
			a.held = a.held[1:]
		}
	}
	return Result{
		Dur:      time.Since(start),
		Consumed: perfcount.Counters{AllocBytes: req.AllocBytes, FreeBytes: req.FreeBytes},
	}, nil
}

// RealNetwork moves bytes over loopback sockets via internal/netem.
type RealNetwork struct {
	cfg *Config
}

// NewRealNetwork builds the real network atom.
func NewRealNetwork(cfg *Config) *RealNetwork { return &RealNetwork{cfg: cfg} }

// Name implements Atom.
func (a *RealNetwork) Name() string { return "network" }

// Consume implements Atom.
func (a *RealNetwork) Consume(ctx context.Context, req Request) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	total := int64(req.NetReadBytes + req.NetWriteBytes)
	if total <= 0 {
		return Result{}, nil
	}
	d, err := netem.Transfer(total, a.cfg.NetBlock)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Dur:      d,
		Consumed: perfcount.Counters{NetReadBytes: req.NetReadBytes, NetWriteBytes: req.NetWriteBytes},
	}, nil
}

// NewRealSet builds the full real atom set; scratchDir may be empty for a
// temporary directory.
func NewRealSet(cfg *Config, scratchDir string) ([]Atom, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	compute, err := NewRealCompute(cfg)
	if err != nil {
		return nil, err
	}
	storage, err := NewRealStorage(cfg, scratchDir)
	if err != nil {
		return nil, err
	}
	return []Atom{compute, storage, NewRealMemory(cfg), NewRealNetwork(cfg)}, nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
