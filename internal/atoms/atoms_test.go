package atoms

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"synapse/internal/machine"
)

func simConfig(machineName string) *Config {
	return &Config{Machine: machine.MustGet(machineName)}
}

func TestNewSimSet(t *testing.T) {
	set, err := NewSimSet(simConfig(machine.Comet))
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, a := range set {
		names[a.Name()] = true
	}
	for _, want := range []string{"compute", "storage", "memory", "network"} {
		if !names[want] {
			t.Errorf("atom set missing %q", want)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if (&Config{}).Validate() == nil {
		t.Error("config without machine should be invalid")
	}
	c := simConfig(machine.Comet)
	c.Kernel = "cobol"
	if c.Validate() == nil {
		t.Error("unknown kernel should be invalid")
	}
	c = simConfig(machine.Comet)
	c.Filesystem = "fat12"
	if c.Validate() == nil {
		t.Error("unknown filesystem should be invalid")
	}
	c = simConfig(machine.Comet)
	c.Workers = -1
	if c.Validate() == nil {
		t.Error("negative workers should be invalid")
	}
	c = simConfig(machine.Comet)
	c.Load = 1.5
	if c.Validate() == nil {
		t.Error("load >= 1 should be invalid")
	}
}

func TestSimComputeBiasAndChunks(t *testing.T) {
	cfg := simConfig(machine.Comet)
	cfg.Kernel = machine.KernelC
	a, err := NewSimCompute(cfg)
	if err != nil {
		t.Fatal(err)
	}
	kp, _ := cfg.Machine.Kernel(machine.KernelC)

	// Large request: consumption converges to target*bias.
	const target = 1e12
	res, err := a.Consume(context.Background(), Request{Cycles: target})
	if err != nil {
		t.Fatal(err)
	}
	wantRatio := kp.CalibBias
	gotRatio := res.Consumed.Cycles / target
	if math.Abs(gotRatio-wantRatio) > 0.001 {
		t.Errorf("large-target consumption ratio = %v, want ≈%v", gotRatio, wantRatio)
	}
	// Instructions follow the kernel's IPC.
	if ipc := res.Consumed.Instructions / res.Consumed.Cycles; math.Abs(ipc-kp.IPC) > 1e-9 {
		t.Errorf("kernel IPC = %v, want %v", ipc, kp.IPC)
	}
	// Small request: overshoot from chunk granularity exceeds the bias.
	small, err := a.Consume(context.Background(), Request{Cycles: kp.Chunk() / 10})
	if err != nil {
		t.Fatal(err)
	}
	if small.Consumed.Cycles < kp.Chunk()*kp.CalibBias*0.99 {
		t.Errorf("small request should consume at least one chunk: %v", small.Consumed.Cycles)
	}
}

func TestSimComputeErrorConvergesToPaperValues(t *testing.T) {
	// E.3 calibration: converged cycle error ≈ bias - 1.
	for _, tc := range []struct {
		machineName, kernel string
		wantErrPct          float64
	}{
		{machine.Comet, machine.KernelC, 3.5},
		{machine.Comet, machine.KernelASM, 14.5},
		{machine.Supermic, machine.KernelC, 4.0},
		{machine.Supermic, machine.KernelASM, 26.5},
	} {
		cfg := simConfig(tc.machineName)
		cfg.Kernel = tc.kernel
		a, _ := NewSimCompute(cfg)
		res, _ := a.Consume(context.Background(), Request{Cycles: 1e13})
		errPct := (res.Consumed.Cycles/1e13 - 1) * 100
		if math.Abs(errPct-tc.wantErrPct) > 0.2 {
			t.Errorf("%s/%s converged error = %.2f%%, want %.1f%%",
				tc.machineName, tc.kernel, errPct, tc.wantErrPct)
		}
	}
}

func TestSimComputeParallelFaster(t *testing.T) {
	serialCfg := simConfig(machine.Titan)
	parCfg := simConfig(machine.Titan)
	parCfg.Workers = 16
	parCfg.Mode = machine.ModeOpenMP
	as, _ := NewSimCompute(serialCfg)
	ap, _ := NewSimCompute(parCfg)
	req := Request{Cycles: 1e11}
	rs, _ := as.Consume(context.Background(), req)
	rp, _ := ap.Consume(context.Background(), req)
	if rp.Dur >= rs.Dur {
		t.Errorf("16-way compute (%v) should beat serial (%v)", rp.Dur, rs.Dur)
	}
	if rp.Consumed.Cycles != rs.Consumed.Cycles {
		t.Error("parallelism must not change cycles consumed")
	}
}

func TestSimComputeLoadSlows(t *testing.T) {
	base := simConfig(machine.Comet)
	loaded := simConfig(machine.Comet)
	loaded.Load = 0.5
	ab, _ := NewSimCompute(base)
	al, _ := NewSimCompute(loaded)
	req := Request{Cycles: 1e10}
	rb, _ := ab.Consume(context.Background(), req)
	rl, _ := al.Consume(context.Background(), req)
	if ratio := float64(rl.Dur) / float64(rb.Dur); math.Abs(ratio-2) > 0.01 {
		t.Errorf("load 0.5 should double duration, ratio = %v", ratio)
	}
}

func TestSimComputeZeroRequest(t *testing.T) {
	a, _ := NewSimCompute(simConfig(machine.Comet))
	res, err := a.Consume(context.Background(), Request{})
	if err != nil || res.Dur != 0 || !res.Consumed.IsZero() {
		t.Errorf("zero request should consume nothing: %+v, %v", res, err)
	}
}

func TestSimStorageBlockSensitivity(t *testing.T) {
	small := simConfig(machine.Supermic)
	small.WriteBlock = 4 << 10
	large := simConfig(machine.Supermic)
	large.WriteBlock = 16 << 20
	as, _ := NewSimStorage(small)
	al, _ := NewSimStorage(large)
	req := Request{WriteBytes: 256 << 20}
	rs, _ := as.Consume(context.Background(), req)
	rl, _ := al.Consume(context.Background(), req)
	if rs.Dur <= rl.Dur {
		t.Errorf("4KB blocks (%v) should be slower than 16MB (%v)", rs.Dur, rl.Dur)
	}
	if rs.Consumed.WriteOps <= rl.Consumed.WriteOps {
		t.Error("smaller blocks should need more operations")
	}
}

func TestSimStorageProfiledBlocks(t *testing.T) {
	cfg := simConfig(machine.Supermic)
	cfg.UseProfiledBlocks = true
	a, _ := NewSimStorage(cfg)
	// Profile observed 4KB ops (1e6 bytes / 250 ops).
	req := Request{WriteBytes: 1e6, WriteOps: 250}
	res, _ := a.Consume(context.Background(), req)
	if math.Abs(res.Consumed.WriteOps-250) > 1 {
		t.Errorf("profiled-block mode: ops = %v, want 250", res.Consumed.WriteOps)
	}
	// Static mode would issue a single 1MB op instead.
	cfg2 := simConfig(machine.Supermic)
	a2, _ := NewSimStorage(cfg2)
	res2, _ := a2.Consume(context.Background(), req)
	if res2.Consumed.WriteOps != 1 {
		t.Errorf("static mode: ops = %v, want 1", res2.Consumed.WriteOps)
	}
}

func TestSimStorageFilesystemChoice(t *testing.T) {
	lustre := simConfig(machine.Titan) // default lustre
	local := simConfig(machine.Titan)
	local.Filesystem = machine.FSLocal
	al, _ := NewSimStorage(lustre)
	aloc, _ := NewSimStorage(local)
	req := Request{WriteBytes: 64 << 20}
	rl, _ := al.Consume(context.Background(), req)
	rloc, _ := aloc.Consume(context.Background(), req)
	if rl.Dur <= rloc.Dur {
		t.Errorf("lustre writes (%v) should be slower than local (%v)", rl.Dur, rloc.Dur)
	}
}

func TestSimMemoryAndNetwork(t *testing.T) {
	cfg := simConfig(machine.Comet)
	mem := NewSimMemory(cfg)
	res, err := mem.Consume(context.Background(), Request{AllocBytes: 1 << 30, FreeBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dur <= 0 {
		t.Error("memory traffic should take time")
	}
	net := NewSimNetwork(cfg)
	rn, err := net.Consume(context.Background(), Request{NetWriteBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	if rn.Dur <= 0 {
		t.Error("network traffic should take time")
	}
	// Zero requests cost nothing.
	if r, _ := mem.Consume(context.Background(), Request{}); r.Dur != 0 {
		t.Error("zero memory request should cost nothing")
	}
	if r, _ := net.Consume(context.Background(), Request{}); r.Dur != 0 {
		t.Error("zero network request should cost nothing")
	}
}

func TestAtomsRespectContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	set, _ := NewSimSet(simConfig(machine.Comet))
	for _, a := range set {
		if _, err := a.Consume(ctx, Request{Cycles: 1, ReadBytes: 1, AllocBytes: 1, NetReadBytes: 1}); err == nil {
			t.Errorf("atom %s ignored cancelled context", a.Name())
		}
	}
}

// Real atoms actually consume host resources; keep the quantities tiny.
func TestRealAtomsSmoke(t *testing.T) {
	cfg := &Config{Machine: machine.Host(), WriteBlock: 4096, ReadBlock: 4096}
	set, err := NewRealSet(cfg, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, a := range set {
		var req Request
		switch a.Name() {
		case "compute":
			req = Request{Cycles: 5e6} // ~2ms
		case "storage":
			req = Request{WriteBytes: 64 << 10, ReadBytes: 64 << 10}
		case "memory":
			req = Request{AllocBytes: 1 << 20, FreeBytes: 1 << 20}
		case "network":
			req = Request{NetWriteBytes: 128 << 10}
		}
		res, err := a.Consume(ctx, req)
		if err != nil {
			t.Fatalf("real %s: %v", a.Name(), err)
		}
		if res.Dur <= 0 {
			t.Errorf("real %s took no time", a.Name())
		}
	}
}

func TestRealStorageReadWithoutPriorWrite(t *testing.T) {
	cfg := &Config{Machine: machine.Host(), ReadBlock: 4096}
	st, err := NewRealStorage(cfg, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	res, err := st.Consume(context.Background(), Request{ReadBytes: 32 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Consumed.ReadBytes != 32<<10 {
		t.Errorf("read %v bytes, want full request", res.Consumed.ReadBytes)
	}
}

// Property: sim atom durations are monotone in request size. Fresh atom
// sets are built per request because the compute atom intentionally carries
// chunk-overshoot surplus across samples of one emulation run.
func TestSimAtomMonotonicityProperty(t *testing.T) {
	cfg := simConfig(machine.Supermic)
	ctx := context.Background()
	consume := func(v float64) ([]Result, bool) {
		set, err := NewSimSet(cfg)
		if err != nil {
			return nil, false
		}
		out := make([]Result, len(set))
		for i, atom := range set {
			r, err := atom.Consume(ctx, Request{
				Cycles: v, ReadBytes: v, WriteBytes: v, AllocBytes: v, NetReadBytes: v,
			})
			if err != nil {
				return nil, false
			}
			out[i] = r
		}
		return out, true
	}
	f := func(aRaw, bRaw uint32) bool {
		a, b := float64(aRaw), float64(bRaw)
		if a > b {
			a, b = b, a
		}
		ra, ok1 := consume(a)
		rb, ok2 := consume(b)
		if !ok1 || !ok2 {
			return false
		}
		for i := range ra {
			if ra[i].Dur > rb[i].Dur {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// The carry-over itself: consecutive samples through one compute atom never
// accumulate more than one chunk of overshoot in total.
func TestSimComputeSurplusCarryOver(t *testing.T) {
	cfg := simConfig(machine.Comet)
	cfg.Kernel = machine.KernelC
	a, err := NewSimCompute(cfg)
	if err != nil {
		t.Fatal(err)
	}
	kp, _ := cfg.Machine.Kernel(machine.KernelC)
	ctx := context.Background()
	var directed, consumed float64
	for i := 0; i < 50; i++ {
		req := kp.Chunk() * (0.3 + float64(i%7)/10) // varying sub-chunk targets
		res, err := a.Consume(ctx, Request{Cycles: req})
		if err != nil {
			t.Fatal(err)
		}
		directed += req
		consumed += res.Consumed.Cycles
	}
	// Whole-run overshoot ≤ bias + one chunk.
	maxWant := directed*kp.CalibBias + kp.Chunk()*kp.CalibBias
	if consumed > maxWant {
		t.Errorf("consumed %v exceeds directed*bias + 1 chunk (%v)", consumed, maxWant)
	}
	if consumed < directed*kp.CalibBias*0.999 {
		t.Errorf("consumed %v below directed*bias %v", consumed, directed*kp.CalibBias)
	}
}

func TestRequestIsZero(t *testing.T) {
	if !(Request{}).IsZero() {
		t.Error("empty request should be zero")
	}
	if (Request{Cycles: 1}).IsZero() {
		t.Error("non-empty request reported zero")
	}
}

func TestDefaultsApplied(t *testing.T) {
	c := &Config{Machine: machine.MustGet(machine.Comet)}
	if c.kernelName() != machine.KernelASM {
		t.Errorf("default kernel = %q, want asm", c.kernelName())
	}
	if c.readBlock() != DefaultIOBlock || c.writeBlock() != DefaultIOBlock {
		t.Error("default blocks should be DefaultIOBlock")
	}
}

func TestDiskAndMemLoadSlow(t *testing.T) {
	base := simConfig(machine.Supermic)
	stressed := simConfig(machine.Supermic)
	stressed.DiskLoad = 0.5
	stressed.MemLoad = 0.5

	sb, _ := NewSimStorage(base)
	ss, _ := NewSimStorage(stressed)
	req := Request{WriteBytes: 64 << 20}
	rb, _ := sb.Consume(context.Background(), req)
	rs, _ := ss.Consume(context.Background(), req)
	if ratio := float64(rs.Dur) / float64(rb.Dur); math.Abs(ratio-2) > 0.01 {
		t.Errorf("disk load 0.5 should double I/O time, ratio = %v", ratio)
	}

	mb := NewSimMemory(base)
	ms := NewSimMemory(stressed)
	mreq := Request{AllocBytes: 1 << 30}
	rmb, _ := mb.Consume(context.Background(), mreq)
	rms, _ := ms.Consume(context.Background(), mreq)
	if ratio := float64(rms.Dur) / float64(rmb.Dur); math.Abs(ratio-2) > 0.01 {
		t.Errorf("memory load 0.5 should double memory time, ratio = %v", ratio)
	}
}

func TestLoadValidationAllKinds(t *testing.T) {
	for _, mod := range []func(*Config){
		func(c *Config) { c.DiskLoad = -0.1 },
		func(c *Config) { c.DiskLoad = 1.0 },
		func(c *Config) { c.MemLoad = 2 },
	} {
		c := simConfig(machine.Comet)
		mod(c)
		if c.Validate() == nil {
			t.Errorf("invalid load accepted: %+v", c)
		}
	}
}
