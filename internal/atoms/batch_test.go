package atoms

import (
	"context"
	"testing"

	"synapse/internal/machine"
)

// batchRequests builds a mixed demand series exercising every atom.
func batchRequests(n int) []Request {
	reqs := make([]Request, n)
	for i := range reqs {
		switch i % 4 {
		case 0:
			reqs[i] = Request{Cycles: 1e8 + float64(i)*1e5, FLOPs: 1e6}
		case 1:
			reqs[i] = Request{ReadBytes: 1 << 20, WriteBytes: 2 << 20, ReadOps: 4, WriteOps: 8}
		case 2:
			reqs[i] = Request{AllocBytes: 1 << 18, FreeBytes: 1 << 17}
		case 3:
			reqs[i] = Request{NetReadBytes: 1 << 12, NetWriteBytes: 1 << 13, Cycles: 5e7}
		}
	}
	return reqs
}

// The batch fast path must match per-request Consume calls bit-for-bit,
// including the compute atom's cross-sample surplus state.
func TestBatchMatchesSequential(t *testing.T) {
	ctx := context.Background()
	mk := func() []Atom {
		cfg := &Config{Machine: machine.MustGet(machine.Thinkie)}
		set, err := NewSimSet(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return set
	}
	reqs := batchRequests(64)

	seqSet, batchSet := mk(), mk()
	for ai := range seqSet {
		var seq []Result
		for _, req := range reqs {
			r, err := seqSet[ai].Consume(ctx, req)
			if err != nil {
				t.Fatal(err)
			}
			seq = append(seq, r)
		}
		out := make([]Result, len(reqs))
		if err := ConsumeBatch(ctx, batchSet[ai], reqs, out); err != nil {
			t.Fatal(err)
		}
		for i := range reqs {
			if out[i] != seq[i] {
				t.Fatalf("%s: batch result %d = %+v, sequential %+v",
					seqSet[ai].Name(), i, out[i], seq[i])
			}
		}
	}
}

// plainAtom implements only Atom, to exercise the fallback adapter.
type plainAtom struct{ calls int }

func (p *plainAtom) Name() string { return "plain" }
func (p *plainAtom) Consume(ctx context.Context, req Request) (Result, error) {
	p.calls++
	return Result{}, nil
}

func TestBatchFallbackAdapter(t *testing.T) {
	a := &plainAtom{}
	reqs := make([]Request, 5)
	out := make([]Result, 5)
	if err := ConsumeBatch(context.Background(), a, reqs, out); err != nil {
		t.Fatal(err)
	}
	if a.calls != 5 {
		t.Errorf("fallback made %d Consume calls, want 5", a.calls)
	}
	if err := ConsumeBatch(context.Background(), a, reqs, out[:2]); err == nil {
		t.Error("short output slice should be rejected")
	}
}

func TestBatchHonorsCancellation(t *testing.T) {
	cfg := &Config{Machine: machine.MustGet(machine.Thinkie)}
	set, err := NewSimSet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	reqs := batchRequests(4)
	out := make([]Result, len(reqs))
	for _, a := range set {
		if err := ConsumeBatch(ctx, a, reqs, out); err == nil {
			t.Errorf("%s: cancelled batch should fail", a.Name())
		}
	}
}
