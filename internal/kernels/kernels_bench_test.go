package kernels

// Real-host microbenchmarks of the compute kernels. The cache-resident ASM
// kernel should achieve a higher floating-point rate per iteration cost than
// the out-of-cache C kernel — the same contrast the paper exploits in E.3.

import "testing"

func benchKernel(b *testing.B, k Kernel) {
	b.Helper()
	var sum float64
	b.SetBytes(int64(k.FLOPsPerIter()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum += k.Run(1)
	}
	b.StopTimer()
	useSink(sum)
	b.ReportMetric(k.FLOPsPerIter()*float64(b.N)/b.Elapsed().Seconds()/1e6, "MFLOPS")
}

// BenchmarkKernelASM measures the cache-resident matrix multiply.
func BenchmarkKernelASM(b *testing.B) { benchKernel(b, NewASM()) }

// BenchmarkKernelC measures the out-of-cache matrix multiply.
func BenchmarkKernelC(b *testing.B) { benchKernel(b, NewC()) }

// BenchmarkKernelLJ measures the Lennard-Jones force kernel.
func BenchmarkKernelLJ(b *testing.B) { benchKernel(b, NewLJ()) }

// BenchmarkCalibrate measures the cost of kernel self-calibration, part of
// the emulator's real-mode startup.
func BenchmarkCalibrate(b *testing.B) {
	k := NewASM()
	for i := 0; i < b.N; i++ {
		_ = Calibrate(k, 2_000_000) // 2ms budget
	}
}

// BenchmarkRunParallel4 measures 4-way parallel kernel dispatch.
func BenchmarkRunParallel4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := RunParallel("asm", 8, 4); err != nil {
			b.Fatal(err)
		}
	}
}
