package kernels

import (
	"math"
	"testing"
	"time"
)

func TestRegistryHasPaperKernels(t *testing.T) {
	names := Names()
	want := map[string]bool{"asm": false, "c": false, "lj": false}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Errorf("kernel %q not registered", n)
		}
	}
}

func TestNewUnknown(t *testing.T) {
	if _, err := New("fortran"); err == nil {
		t.Error("unknown kernel should error")
	}
}

func TestRegisterUserKernel(t *testing.T) {
	Register("user-test", func() Kernel { return NewLJ() })
	k, err := New("user-test")
	if err != nil {
		t.Fatal(err)
	}
	if k.Name() != "lj" {
		t.Errorf("constructor mismatch: %s", k.Name())
	}
}

func TestKernelsProduceFiniteWork(t *testing.T) {
	for _, name := range []string{"asm", "c", "lj"} {
		k, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		v := k.Run(3)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("%s produced non-finite checksum %v", name, v)
		}
		if k.FLOPsPerIter() <= 0 {
			t.Errorf("%s reports non-positive flops/iter", name)
		}
		if k.Run(0) != 0 {
			t.Errorf("%s Run(0) should do nothing", name)
		}
	}
}

func TestASMWorkingSetIsCacheResident(t *testing.T) {
	// Three matrices of asmDim² float64 must stay under a typical 256 KB L2.
	bytes := 3 * asmDim * asmDim * 8
	if bytes > 256<<10 {
		t.Errorf("ASM working set %d bytes exceeds 256KB L2", bytes)
	}
}

func TestCWorkingSetSpillsCache(t *testing.T) {
	bytes := 3 * cDim * cDim * 8
	if bytes < 1<<20 {
		t.Errorf("C working set %d bytes should exceed 1MB", bytes)
	}
}

func TestMatmulCorrectness(t *testing.T) {
	// 2x2 known product.
	a := []float64{1, 2, 3, 4}
	b := []float64{5, 6, 7, 8}
	c := make([]float64, 4)
	matmul(c, a, b, 2)
	want := []float64{19, 22, 43, 50}
	for i := range want {
		if math.Abs(c[i]-want[i]) > 1e-12 {
			t.Fatalf("matmul = %v, want %v", c, want)
		}
	}
}

func TestCalibrate(t *testing.T) {
	k := NewASM()
	cal := Calibrate(k, 10*time.Millisecond)
	if cal.SecPerIter <= 0 {
		t.Fatalf("SecPerIter = %v", cal.SecPerIter)
	}
	if cal.FLOPS <= 0 {
		t.Fatalf("FLOPS = %v", cal.FLOPS)
	}
	if cal.Kernel != "asm" {
		t.Errorf("Kernel = %q", cal.Kernel)
	}
	// A modern core does at least 10 MFLOPS with this loop.
	if cal.FLOPS < 1e7 {
		t.Errorf("implausibly slow: %v FLOPS", cal.FLOPS)
	}
}

func TestConsumeCycles(t *testing.T) {
	k := NewASM()
	cal := Calibrate(k, 5*time.Millisecond)
	iters := ConsumeCycles(k, cal, 1e7, 2.5e9) // 4 ms of cycles
	if iters < 1 {
		t.Fatalf("iters = %d", iters)
	}
	// Zero or negative requests do nothing.
	if ConsumeCycles(k, cal, 0, 2.5e9) != 0 {
		t.Error("zero cycles should run zero iterations")
	}
	if ConsumeCycles(k, cal, -5, 2.5e9) != 0 {
		t.Error("negative cycles should run zero iterations")
	}
	if ConsumeCycles(k, Calibration{}, 100, 2.5e9) != 0 {
		t.Error("empty calibration should be rejected")
	}
}

func TestConsumeCyclesDurationRoughlyMatches(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	k := NewASM()
	cal := Calibrate(k, 20*time.Millisecond)
	const clockHz = 2.5e9
	want := 100 * time.Millisecond
	// Best of three attempts: shared hosts (especially under concurrent
	// benchmark load) can stall a goroutine well beyond the measurement.
	best := time.Duration(math.MaxInt64)
	for attempt := 0; attempt < 3; attempt++ {
		start := time.Now()
		ConsumeCycles(k, cal, want.Seconds()*clockHz, clockHz)
		if got := time.Since(start); got < best {
			best = got
		}
	}
	// Within an order of magnitude: the point is the scaling is right.
	if best < want/8 || best > want*8 {
		t.Errorf("consuming %v of cycles took %v", want, best)
	}
}

func TestRunParallel(t *testing.T) {
	if err := RunParallel("asm", 8, 4); err != nil {
		t.Fatal(err)
	}
	if err := RunParallel("asm", 3, 0); err != nil {
		t.Fatal(err) // workers clamp to 1
	}
	if err := RunParallel("nonesuch", 4, 2); err == nil {
		t.Error("unknown kernel should error in parallel mode")
	}
}

func TestLJKernelPhysicsSane(t *testing.T) {
	k := NewLJ()
	v1 := k.Run(ljParticles) // one full sweep
	if v1 == 0 {
		t.Error("LJ forces sum to exactly zero, suspicious")
	}
}

func TestSinkAccumulates(t *testing.T) {
	before := Sink()
	useSink(1.5)
	if Sink()-before != 1.5 {
		t.Error("sink did not accumulate")
	}
}
