// Package kernels provides real, runnable compute kernels for emulation on
// the host, mirroring the paper's kernel menagerie (§4.2): a cache-resident
// matrix-multiplication kernel (the paper's assembly kernel — maximum
// efficiency), an out-of-cache matrix multiplication (the paper's C kernel —
// closer to real application behaviour), and an application-specific
// Lennard-Jones kernel of the kind users plug in for higher fidelity.
//
// In simulated mode the atoms use the analytic per-machine kernel models
// from internal/machine instead; these implementations are what cmd/mdsim
// and real-mode emulation actually execute.
package kernels

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// Kernel is a unit-of-work generator: Run(n) executes n independent
// iterations and returns a checksum (which callers should consume to defeat
// dead-code elimination).
type Kernel interface {
	// Name is the kernel's registry key ("asm", "c", "lj").
	Name() string
	// FLOPsPerIter reports the floating-point work of one iteration.
	FLOPsPerIter() float64
	// Run executes n iterations.
	Run(n int) float64
}

// asmDim is the matrix dimension of the cache-resident kernel; three
// float64 matrices of 48x48 occupy ~55 KB and stay within L2.
const asmDim = 48

// cDim is the matrix dimension of the out-of-cache kernel; three matrices
// of 384x384 occupy ~3.5 MB and spill past typical L2 caches, giving the
// memory-access pattern the paper attributes to its C kernel.
const cDim = 384

// ASM is the cache-resident matrix-multiplication kernel. One iteration is
// one full dim³ multiply on matrices that fit in cache.
type ASM struct {
	a, b, c []float64
}

// NewASM allocates the kernel's working set.
func NewASM() *ASM {
	return &ASM{a: seedMatrix(asmDim, 1), b: seedMatrix(asmDim, 2), c: make([]float64, asmDim*asmDim)}
}

// Name implements Kernel.
func (*ASM) Name() string { return "asm" }

// FLOPsPerIter implements Kernel: 2·dim³ multiply-adds.
func (*ASM) FLOPsPerIter() float64 { return 2 * asmDim * asmDim * asmDim }

// Run implements Kernel.
func (k *ASM) Run(n int) float64 {
	var sum float64
	for i := 0; i < n; i++ {
		matmul(k.c, k.a, k.b, asmDim)
		sum += k.c[(i*7)%len(k.c)]
	}
	return sum
}

// C is the out-of-cache matrix-multiplication kernel. One iteration is one
// row-panel pass (dim² multiply-adds), so iteration cost is comparable to
// the ASM kernel while the working set is not cache resident.
type C struct {
	a, b, c []float64
	row     int
}

// NewC allocates the kernel's working set.
func NewC() *C {
	return &C{a: seedMatrix(cDim, 3), b: seedMatrix(cDim, 4), c: make([]float64, cDim*cDim)}
}

// Name implements Kernel.
func (*C) Name() string { return "c" }

// FLOPsPerIter implements Kernel: 2·dim² per row panel.
func (*C) FLOPsPerIter() float64 { return 2 * cDim * cDim }

// Run implements Kernel.
func (k *C) Run(n int) float64 {
	var sum float64
	for i := 0; i < n; i++ {
		r := k.row
		k.row = (k.row + 1) % cDim
		// One row of C = A[r,:] * B.
		for j := 0; j < cDim; j++ {
			var acc float64
			aj := k.a[r*cDim:]
			for p := 0; p < cDim; p++ {
				acc += aj[p] * k.b[p*cDim+j]
			}
			k.c[r*cDim+j] = acc
		}
		sum += k.c[r*cDim+(i%cDim)]
	}
	return sum
}

// ljParticles is the particle count of the Lennard-Jones kernel; one
// iteration computes all pairwise forces of one particle against the rest.
const ljParticles = 512

// LJ is an application-specific kernel: a Lennard-Jones force evaluation of
// the sort a user would register to emulate a molecular-dynamics code more
// faithfully than generic matrix multiplication (paper §5 E.3 discussion).
type LJ struct {
	x, y, z    []float64
	fx, fy, fz []float64
	idx        int
}

// NewLJ allocates and seeds the particle system.
func NewLJ() *LJ {
	k := &LJ{
		x: make([]float64, ljParticles), y: make([]float64, ljParticles), z: make([]float64, ljParticles),
		fx: make([]float64, ljParticles), fy: make([]float64, ljParticles), fz: make([]float64, ljParticles),
	}
	for i := 0; i < ljParticles; i++ {
		k.x[i] = math.Sin(float64(i) * 0.7)
		k.y[i] = math.Cos(float64(i) * 1.3)
		k.z[i] = math.Sin(float64(i)*0.37 + 1)
	}
	return k
}

// Name implements Kernel.
func (*LJ) Name() string { return "lj" }

// FLOPsPerIter implements Kernel: ~26 flops per pair interaction.
func (*LJ) FLOPsPerIter() float64 { return 26 * (ljParticles - 1) }

// Run implements Kernel.
func (k *LJ) Run(n int) float64 {
	var sum float64
	for it := 0; it < n; it++ {
		i := k.idx
		k.idx = (k.idx + 1) % ljParticles
		var fx, fy, fz float64
		xi, yi, zi := k.x[i], k.y[i], k.z[i]
		for j := 0; j < ljParticles; j++ {
			if j == i {
				continue
			}
			dx, dy, dz := xi-k.x[j], yi-k.y[j], zi-k.z[j]
			r2 := dx*dx + dy*dy + dz*dz + 0.01
			inv2 := 1 / r2
			inv6 := inv2 * inv2 * inv2
			f := inv6 * (inv6 - 0.5) * inv2
			fx += f * dx
			fy += f * dy
			fz += f * dz
		}
		k.fx[i], k.fy[i], k.fz[i] = fx, fy, fz
		sum += fx + fy + fz
	}
	return sum
}

// matmul computes c = a*b for dim×dim row-major matrices (ikj loop order).
func matmul(c, a, b []float64, dim int) {
	for i := 0; i < dim; i++ {
		ci := c[i*dim : (i+1)*dim]
		for j := range ci {
			ci[j] = 0
		}
		for p := 0; p < dim; p++ {
			av := a[i*dim+p]
			bp := b[p*dim : (p+1)*dim]
			for j, bv := range bp {
				ci[j] += av * bv
			}
		}
	}
}

// seedMatrix fills a dim×dim matrix deterministically.
func seedMatrix(dim int, seed float64) []float64 {
	m := make([]float64, dim*dim)
	for i := range m {
		m[i] = math.Sin(seed + float64(i)*0.001)
	}
	return m
}

// registry of kernel constructors; user kernels can be registered at init
// time (the paper's "users can provide additional compute kernels").
var (
	regMu    sync.RWMutex
	registry = map[string]func() Kernel{
		"asm": func() Kernel { return NewASM() },
		"c":   func() Kernel { return NewC() },
		"lj":  func() Kernel { return NewLJ() },
	}
)

// Register adds a kernel constructor under its name; re-registering a name
// replaces the previous constructor.
func Register(name string, mk func() Kernel) {
	regMu.Lock()
	defer regMu.Unlock()
	registry[name] = mk
}

// New instantiates the named kernel.
func New(name string) (Kernel, error) {
	regMu.RLock()
	mk, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("kernels: unknown kernel %q (known: %v)", name, Names())
	}
	return mk(), nil
}

// Names lists registered kernels, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Calibration is a kernel's measured speed on this host.
type Calibration struct {
	Kernel     string
	SecPerIter float64
	FLOPS      float64 // achieved floating-point rate
}

// Calibrate measures the kernel for roughly the given duration (minimum a
// few milliseconds) and returns its speed. The measurement regime differs
// from long bulk runs (cold branch predictors, timer overhead) — the origin
// of the calibration bias the paper observes in E.3.
func Calibrate(k Kernel, budget time.Duration) Calibration {
	if budget < 2*time.Millisecond {
		budget = 2 * time.Millisecond
	}
	// Warm up.
	sink := k.Run(1)
	n := 1
	var el time.Duration
	for {
		start := time.Now()
		sink += k.Run(n)
		el = time.Since(start)
		if el >= budget/4 {
			break
		}
		n *= 2
		if n > 1<<22 {
			break
		}
	}
	useSink(sink)
	sec := el.Seconds() / float64(n)
	if sec <= 0 {
		sec = 1e-9
	}
	return Calibration{Kernel: k.Name(), SecPerIter: sec, FLOPS: k.FLOPsPerIter() / sec}
}

// ConsumeCycles runs the kernel until approximately the requested number of
// cycles (at the nominal clock rate) have been consumed, using the supplied
// calibration. It returns the iterations executed.
func ConsumeCycles(k Kernel, cal Calibration, cycles, clockHz float64) int {
	if cycles <= 0 || clockHz <= 0 || cal.SecPerIter <= 0 {
		return 0
	}
	sec := cycles / clockHz
	iters := int(math.Ceil(sec / cal.SecPerIter))
	if iters < 1 {
		iters = 1
	}
	useSink(k.Run(iters))
	return iters
}

// RunParallel distributes n iterations over workers goroutines, each with
// its own kernel instance — the OpenMP-style emulation mode.
func RunParallel(name string, n, workers int) error {
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		share := n / workers
		if w < n%workers {
			share++
		}
		wg.Add(1)
		go func(w, share int) {
			defer wg.Done()
			k, err := New(name)
			if err != nil {
				errs[w] = err
				return
			}
			useSink(k.Run(share))
		}(w, share)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// sink defeats dead-code elimination of kernel results.
var sink float64
var sinkMu sync.Mutex

func useSink(v float64) {
	sinkMu.Lock()
	sink += v
	sinkMu.Unlock()
}

// Sink exposes the accumulated checksum (tests only).
func Sink() float64 {
	sinkMu.Lock()
	defer sinkMu.Unlock()
	return sink
}
