package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered family as Prometheus text
// exposition (version 0.0.4): families sorted by name, series sorted by
// label values, histograms expanded into cumulative _bucket/_sum/_count
// series. The output is deterministic for a fixed registry state, which is
// what lets tests golden-pin it.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, name := range r.names() {
		r.mu.RLock()
		f := r.families[name]
		r.mu.RUnlock()
		if err := f.write(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Handler serves the registry as a scrape endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

func (f *family) write(w *bufio.Writer) error {
	f.mu.RLock()
	keys := append([]labelKey(nil), f.order...)
	series := make([]any, len(keys))
	for i, k := range keys {
		series[i] = f.series[k]
	}
	f.mu.RUnlock()
	if len(keys) == 0 {
		return nil
	}
	// Sort series by label values so output order is registration-order
	// independent.
	idx := make([]int, len(keys))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ka, kb := keys[idx[a]], keys[idx[b]]
		for i := range ka {
			if ka[i] != kb[i] {
				return ka[i] < kb[i]
			}
		}
		return false
	})
	if f.help != "" {
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	}
	fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
	for _, i := range idx {
		labels := f.labelString(keys[i], "")
		switch s := series[i].(type) {
		case *Counter:
			fmt.Fprintf(w, "%s%s %d\n", f.name, labels, s.Value())
		case *Gauge:
			fmt.Fprintf(w, "%s%s %s\n", f.name, labels, formatValue(s.Value()))
		case func() float64:
			fmt.Fprintf(w, "%s%s %s\n", f.name, labels, formatValue(s()))
		case *Histogram:
			cum, count, sum := s.snapshot()
			for b, ub := range f.upper {
				le := f.labelString(keys[i], formatValue(ub))
				fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, le, cum[b])
			}
			inf := f.labelString(keys[i], "+Inf")
			fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, inf, cum[len(cum)-1])
			fmt.Fprintf(w, "%s_sum%s %s\n", f.name, labels, formatValue(sum))
			fmt.Fprintf(w, "%s_count%s %d\n", f.name, labels, count)
		}
	}
	return nil
}

// labelString renders {k="v",...}; le, when non-empty, is appended as the
// histogram bucket bound. Returns "" for an unlabeled series without le.
func (f *family) labelString(key labelKey, le string) string {
	if len(f.labels) == 0 && le == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, name := range f.labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(key[i]))
		b.WriteByte('"')
	}
	if le != "" {
		if len(f.labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`le="`)
		b.WriteString(le)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// formatValue renders a float the way Prometheus expects: integers without
// a decimal point, everything else in shortest form.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

func escapeHelp(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

// Exposition summarizes a parsed scrape: family names (HELP/TYPE subjects
// and series base names) and the total series count.
type Exposition struct {
	Families map[string]string // name -> type ("" when only seen as a series)
	Series   int
}

// Has reports whether a family or series base name appears, directly or as
// a histogram child (_bucket/_sum/_count).
func (e *Exposition) Has(name string) bool {
	if _, ok := e.Families[name]; ok {
		return true
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if _, ok := e.Families[name+suffix]; ok {
			return true
		}
	}
	return false
}

// ParseExposition validates Prometheus text exposition syntax line by line:
// comment lines must be well-formed HELP/TYPE declarations, series lines
// must have a valid metric name, balanced label syntax, and a parseable
// value. It returns a summary of what the scrape contained, or the first
// syntax error with its line number. This is the validator behind CI's
// /v1/metrics smoke check and cmd/obslint.
func ParseExposition(data []byte) (*Exposition, error) {
	exp := &Exposition{Families: map[string]string{}}
	line := 0
	for len(data) > 0 {
		line++
		var row string
		if i := strings.IndexByte(string(data), '\n'); i >= 0 {
			row, data = string(data[:i]), data[i+1:]
		} else {
			row, data = string(data), nil
		}
		if strings.TrimSpace(row) == "" {
			continue
		}
		if strings.HasPrefix(row, "#") {
			fields := strings.Fields(row)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return nil, fmt.Errorf("line %d: malformed comment %q (want # HELP/TYPE name ...)", line, row)
			}
			if !validMetricName(fields[2]) {
				return nil, fmt.Errorf("line %d: invalid metric name %q", line, fields[2])
			}
			if fields[1] == "TYPE" {
				switch fields[3] {
				case typeCounter, typeGauge, typeHistogram, "summary", "untyped":
				default:
					return nil, fmt.Errorf("line %d: unknown metric type %q", line, fields[3])
				}
				exp.Families[fields[2]] = fields[3]
			} else if _, ok := exp.Families[fields[2]]; !ok {
				exp.Families[fields[2]] = ""
			}
			continue
		}
		name, rest, err := parseSeriesName(row)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		fields := strings.Fields(rest)
		if len(fields) < 1 || len(fields) > 2 {
			return nil, fmt.Errorf("line %d: want value [timestamp] after series, got %q", line, rest)
		}
		if _, err := strconv.ParseFloat(fields[0], 64); err != nil && fields[0] != "+Inf" && fields[0] != "-Inf" && fields[0] != "NaN" {
			return nil, fmt.Errorf("line %d: bad value %q", line, fields[0])
		}
		if len(fields) == 2 {
			if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
				return nil, fmt.Errorf("line %d: bad timestamp %q", line, fields[1])
			}
		}
		if _, ok := exp.Families[name]; !ok {
			exp.Families[name] = ""
		}
		exp.Series++
	}
	if exp.Series == 0 {
		return nil, fmt.Errorf("no series in exposition")
	}
	return exp, nil
}

// parseSeriesName splits a series line into its metric name (labels
// validated and discarded) and the remainder holding value and optional
// timestamp.
func parseSeriesName(row string) (name, rest string, err error) {
	i := 0
	for i < len(row) && isNameChar(row[i], i == 0) {
		i++
	}
	if i == 0 {
		return "", "", fmt.Errorf("series line does not start with a metric name: %q", row)
	}
	name = row[:i]
	rest = row[i:]
	if strings.HasPrefix(rest, "{") {
		end := -1
		inQuote := false
		for j := 1; j < len(rest); j++ {
			switch {
			case inQuote && rest[j] == '\\':
				j++
			case rest[j] == '"':
				inQuote = !inQuote
			case !inQuote && rest[j] == '}':
				end = j
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return "", "", fmt.Errorf("unterminated label set in %q", row)
		}
		body := rest[1:end]
		if strings.TrimSpace(body) != "" {
			for _, pair := range splitLabels(body) {
				k, v, ok := strings.Cut(pair, "=")
				if !ok || !validMetricName(k) || len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
					return "", "", fmt.Errorf("malformed label %q in %q", pair, row)
				}
			}
		}
		rest = rest[end+1:]
	}
	if rest == "" || (rest[0] != ' ' && rest[0] != '\t') {
		return "", "", fmt.Errorf("missing value separator in %q", row)
	}
	return name, rest, nil
}

// splitLabels splits a label body on commas outside quoted values.
func splitLabels(body string) []string {
	var out []string
	start, inQuote := 0, false
	for i := 0; i < len(body); i++ {
		switch {
		case inQuote && body[i] == '\\':
			i++
		case body[i] == '"':
			inQuote = !inQuote
		case !inQuote && body[i] == ',':
			out = append(out, body[start:i])
			start = i + 1
		}
	}
	return append(out, body[start:])
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if !isNameChar(s[i], i == 0) {
			return false
		}
	}
	return true
}

func isNameChar(c byte, first bool) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		return true
	case c >= '0' && c <= '9':
		return !first
	}
	return false
}
