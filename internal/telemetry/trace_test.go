package telemetry

import (
	"strings"
	"testing"
	"time"
)

// TestTraceWriterRoundTrip: everything the writer emits must parse as
// valid trace-event JSON through our own validator (the same one CI runs
// on synapse-sim -trace output).
func TestTraceWriterRoundTrip(t *testing.T) {
	var sb strings.Builder
	tw := NewTraceWriter(&sb)
	tw.MetaProcessName(1, "scenario \"mix\"")
	tw.MetaThreadName(1, 2, "node n-0 [stampede]")
	tw.Complete("md", "service", 1, 2, 100*time.Millisecond, 250*time.Millisecond, `{"load":0.3}`)
	tw.AsyncBegin("md", "service", 1, 7, 100*time.Millisecond, "")
	tw.AsyncEnd("md", "service", 1, 7, 350*time.Millisecond, `{"killed":true}`)
	tw.Instant("node_down", "cluster", 1, 0, time.Second, "g", "")
	tw.Counter("queue", 1, time.Second, []string{"md", "sleep"}, []float64{3, 0.5})
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}

	sum, err := ParseTrace([]byte(sb.String()))
	if err != nil {
		t.Fatalf("writer output invalid: %v\n%s", err, sb.String())
	}
	if sum.Events != 7 {
		t.Errorf("parsed %d events, want 7", sum.Events)
	}
	for _, ph := range []string{"M", "X", "b", "e", "i", "C"} {
		if sum.Phases[ph] == 0 {
			t.Errorf("phase %q missing: %v", ph, sum.Phases)
		}
	}
	// Timestamps are microseconds: 100ms -> 100000.
	if !strings.Contains(sb.String(), `"ts":100000.000`) {
		t.Errorf("virtual time not mapped to microseconds:\n%s", sb.String())
	}
}

func TestTraceWriterEmpty(t *testing.T) {
	var sb strings.Builder
	tw := NewTraceWriter(&sb)
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	// An empty trace is syntactically fine JSON but fails validation — CI
	// must reject a trace that recorded nothing.
	if _, err := ParseTrace([]byte(sb.String())); err == nil {
		t.Error("empty trace accepted")
	}
}

func TestParseTraceForms(t *testing.T) {
	array := `[{"ph":"i","name":"x","ts":1,"pid":1,"tid":1,"s":"g"}]`
	if sum, err := ParseTrace([]byte(array)); err != nil || sum.Events != 1 {
		t.Errorf("bare array rejected: %v", err)
	}
	for name, in := range map[string]string{
		"not json":      "perfetto",
		"no ph":         `[{"name":"x","ts":1}]`,
		"unknown phase": `[{"ph":"Z","name":"x","ts":1}]`,
		"no ts":         `[{"ph":"i","name":"x"}]`,
		"no name":       `[{"ph":"X","ts":1,"dur":2}]`,
		"empty doc":     `{"traceEvents":[]}`,
		"wrong object":  `{"events":[]}`,
	} {
		if _, err := ParseTrace([]byte(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
}
