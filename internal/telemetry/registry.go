// Package telemetry is the repo's unified observability layer: a
// zero-dependency metrics registry (atomic counters, gauges and
// fixed-bucket histograms with an allocation-free hot path) rendered as
// Prometheus text exposition, slog-based structured-logging helpers, build
// information for -version flags and health payloads, and a Chrome
// trace-event writer that turns a simulation's kernel event stream into a
// Perfetto-loadable trace.
//
// Every subsystem that already had signals — the storesrv admission queue,
// storeclnt's retry/breaker/hedge counters, the scenario scheduler —
// registers its instruments here, so one /v1/metrics scrape (or one trace
// file) sees the whole system. The paper's thesis is that applications
// should be observable and predictable; this package is where the repro
// itself becomes observable.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Instrument types, used for TYPE lines and registration conflict checks.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// maxLabels bounds a family's label arity; series keys are fixed-size
// arrays so hot-path lookups never allocate.
const maxLabels = 4

// labelKey is a comparable series key. Fixed-size so With() can build one
// on the stack from variadic values without allocating.
type labelKey [maxLabels]string

// Registry holds metric families and renders them as Prometheus text
// exposition. The zero value is unusable; construct with NewRegistry.
// Registration is idempotent: registering an existing name with the same
// type and labels returns the existing family (so several clients can
// share one registry), while a conflicting re-registration panics —
// instrument names are program constants, and a clash is a programming
// error, not a runtime condition.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// family is one named metric with zero or more labeled series.
type family struct {
	name   string
	help   string
	typ    string
	labels []string
	upper  []float64 // histogram bucket upper bounds (histograms only)

	mu     sync.RWMutex
	series map[labelKey]any // *Counter, *Gauge, *Histogram, or func() float64
	order  []labelKey       // first-With order; exposition sorts a copy
}

// register returns the named family, creating it on first use and
// panicking on a type/label/bucket mismatch with an earlier registration.
func (r *Registry) register(name, help, typ string, labels []string, upper []float64) *family {
	if name == "" {
		panic("telemetry: empty metric name")
	}
	if len(labels) > maxLabels {
		panic(fmt.Sprintf("telemetry: %s: %d labels exceeds the maximum %d", name, len(labels), maxLabels))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{
			name:   name,
			help:   help,
			typ:    typ,
			labels: append([]string(nil), labels...),
			upper:  append([]float64(nil), upper...),
			series: map[labelKey]any{},
		}
		r.families[name] = f
		return f
	}
	if f.typ != typ || len(f.labels) != len(labels) {
		panic(fmt.Sprintf("telemetry: %s re-registered as %s(%v), was %s(%v)", name, typ, labels, f.typ, f.labels))
	}
	for i := range labels {
		if f.labels[i] != labels[i] {
			panic(fmt.Sprintf("telemetry: %s re-registered with labels %v, was %v", name, labels, f.labels))
		}
	}
	if typ == typeHistogram {
		if len(f.upper) != len(upper) {
			panic(fmt.Sprintf("telemetry: %s re-registered with %d buckets, was %d", name, len(upper), len(f.upper)))
		}
		for i := range upper {
			if f.upper[i] != upper[i] {
				panic(fmt.Sprintf("telemetry: %s re-registered with buckets %v, was %v", name, upper, f.upper))
			}
		}
	}
	return f
}

// at returns the series for key, creating it with mk on first use.
func (f *family) at(key labelKey, mk func() any) any {
	f.mu.RLock()
	s, ok := f.series[key]
	f.mu.RUnlock()
	if ok {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok = f.series[key]; ok {
		return s
	}
	s = mk()
	f.series[key] = s
	f.order = append(f.order, key)
	return s
}

// key builds a series key from label values, enforcing arity.
func (f *family) key(values []string) labelKey {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: %s: %d label values for %d labels", f.name, len(values), len(f.labels)))
	}
	var k labelKey
	copy(k[:], values)
	return k
}

// Counter is a monotonically increasing count. All methods are atomic and
// allocation-free.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n < 0 panics: counters only go up).
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic("telemetry: counter decremented")
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down. All methods are atomic and
// allocation-free; the value is a float64 stored as bits.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the value by d.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets. Observe is atomic and
// allocation-free: a linear scan over the (small, sorted) upper bounds, one
// atomic add, and a CAS loop for the running sum. Buckets are cumulative in
// exposition only; internally each slot counts its own interval.
type Histogram struct {
	upper  []float64 // sorted upper bounds; +Inf is implicit as the last slot
	counts []atomic.Int64
	sum    atomic.Uint64 // float64 bits
}

// DefBuckets are the default latency buckets, in seconds — the classic
// Prometheus spread from 5ms to 10s.
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

func newHistogram(upper []float64) *Histogram {
	for i := 1; i < len(upper); i++ {
		if upper[i] <= upper[i-1] {
			panic(fmt.Sprintf("telemetry: histogram buckets not strictly increasing at %v", upper[i]))
		}
	}
	return &Histogram{upper: upper, counts: make([]atomic.Int64, len(upper)+1)}
}

// Observe records v. Values equal to an upper bound land in that bucket
// (le is inclusive); values above every bound land in the implicit +Inf
// bucket.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.upper) && v > h.upper[i] {
		i++
	}
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// snapshot returns cumulative bucket counts (one per upper bound plus
// +Inf), the total count, and the sum, reading each slot once.
func (h *Histogram) snapshot() (cum []int64, count int64, sum float64) {
	cum = make([]int64, len(h.counts))
	var run int64
	for i := range h.counts {
		run += h.counts[i].Load()
		cum[i] = run
	}
	return cum, run, h.Sum()
}

// Counter registers (or finds) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, typeCounter, nil, nil)
	return f.at(labelKey{}, func() any { return &Counter{} }).(*Counter)
}

// Gauge registers (or finds) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, typeGauge, nil, nil)
	return f.at(labelKey{}, func() any { return &Gauge{} }).(*Gauge)
}

// GaugeFunc registers a gauge whose value is read from fn at exposition
// time — the natural fit for values another subsystem already tracks
// (in-flight requests, queue depths, cache sizes). Re-registering keeps
// the first function.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, typeGauge, nil, nil)
	f.at(labelKey{}, func() any { return fn })
}

// Histogram registers (or finds) an unlabeled fixed-bucket histogram.
// upper must be strictly increasing; +Inf is implicit. Nil uses DefBuckets.
func (r *Registry) Histogram(name, help string, upper []float64) *Histogram {
	if upper == nil {
		upper = DefBuckets
	}
	f := r.register(name, help, typeHistogram, nil, upper)
	return f.at(labelKey{}, func() any { return newHistogram(f.upper) }).(*Histogram)
}

// CounterVec is a counter family partitioned by labels.
type CounterVec struct{ f *family }

// CounterVec registers (or finds) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.register(name, help, typeCounter, labels, nil)}
}

// With returns the counter for the given label values (created on first
// use). Callers on hot paths should cache the returned instrument.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.at(v.f.key(values), func() any { return &Counter{} }).(*Counter)
}

// GaugeVec is a gauge family partitioned by labels.
type GaugeVec struct{ f *family }

// GaugeVec registers (or finds) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.register(name, help, typeGauge, labels, nil)}
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.at(v.f.key(values), func() any { return &Gauge{} }).(*Gauge)
}

// HistogramVec is a histogram family partitioned by labels; every series
// shares the family's buckets.
type HistogramVec struct{ f *family }

// HistogramVec registers (or finds) a labeled histogram family. Nil
// buckets use DefBuckets.
func (r *Registry) HistogramVec(name, help string, upper []float64, labels ...string) *HistogramVec {
	if upper == nil {
		upper = DefBuckets
	}
	return &HistogramVec{r.register(name, help, typeHistogram, labels, upper)}
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.at(v.f.key(values), func() any { return newHistogram(v.f.upper) }).(*Histogram)
}

// names returns the registered family names, sorted.
func (r *Registry) names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.families))
	for name := range r.families {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
