package telemetry

import (
	"strings"
	"sync"
	"testing"
)

// TestConcurrentExactTotals hammers one counter, one gauge and one
// histogram from many goroutines and asserts exact totals — the registry's
// atomics must not lose updates under the race detector.
func TestConcurrentExactTotals(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops_total", "ops")
	g := r.Gauge("level", "level")
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 1, 10})
	vec := r.CounterVec("by_code_total", "per code", "code")

	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.5)
				vec.With("200").Inc()
			}
		}()
	}
	wg.Wait()

	const want = workers * per
	if got := c.Value(); got != want {
		t.Errorf("counter = %d, want %d", got, want)
	}
	if got := g.Value(); got != want {
		t.Errorf("gauge = %g, want %d", got, want)
	}
	if got := h.Count(); got != want {
		t.Errorf("histogram count = %d, want %d", got, want)
	}
	if got := h.Sum(); got != want*0.5 {
		t.Errorf("histogram sum = %g, want %g", got, float64(want)*0.5)
	}
	if got := vec.With("200").Value(); got != want {
		t.Errorf("vec counter = %d, want %d", got, want)
	}
}

// TestHistogramBucketEdges pins the inclusive-upper-bound semantics: a
// value equal to a bound lands in that bound's bucket, a value above every
// bound lands only in +Inf, and cumulative counts expose correctly.
func TestHistogramBucketEdges(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("edges", "", []float64{1, 2, 4})
	for _, v := range []float64{
		0,    // first bucket
		1,    // == bound 1: still the first bucket (le is inclusive)
		1.5,  // second bucket
		2,    // == bound 2
		4,    // == last finite bound
		4.01, // +Inf only
		-3,   // below everything: first bucket
	} {
		h.Observe(v)
	}
	cum, count, sum := h.snapshot()
	if count != 7 {
		t.Fatalf("count = %d, want 7", count)
	}
	wantCum := []int64{3, 5, 6, 7} // le=1, le=2, le=4, +Inf
	for i, want := range wantCum {
		if cum[i] != want {
			t.Errorf("cumulative[%d] = %d, want %d (all: %v)", i, cum[i], want, cum)
		}
	}
	if want := 0.0 + 1 + 1.5 + 2 + 4 + 4.01 - 3; sum != want {
		t.Errorf("sum = %g, want %g", sum, want)
	}
}

func TestHistogramRejectsUnsortedBuckets(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unsorted buckets accepted")
		}
	}()
	r := NewRegistry()
	r.Histogram("bad", "", []float64{1, 1})
}

// TestRegistrationIdempotent: same name+type+labels returns the same
// instrument (shared across registrants); a conflicting type panics.
func TestRegistrationIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "")
	b := r.Counter("x_total", "")
	if a != b {
		t.Error("re-registration returned a different counter")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Error("shared counter not shared")
	}

	defer func() {
		if recover() == nil {
			t.Fatal("type conflict accepted")
		}
	}()
	r.Gauge("x_total", "")
}

func TestVecLabelArity(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("l_total", "", "a", "b")
	v.With("1", "2").Inc()
	defer func() {
		if recover() == nil {
			t.Fatal("wrong arity accepted")
		}
	}()
	v.With("1")
}

func TestGaugeFuncAndSetAdd(t *testing.T) {
	r := NewRegistry()
	n := 41.0
	r.GaugeFunc("live", "", func() float64 { return n })
	g := r.Gauge("dial", "")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Errorf("gauge = %g, want 1.5", got)
	}
	n = 42
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "live 42\n") {
		t.Errorf("gauge func not read at exposition time:\n%s", sb.String())
	}
}

func TestCounterRejectsNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative counter add accepted")
		}
	}()
	c := NewRegistry().Counter("c_total", "")
	c.Add(-1)
}
