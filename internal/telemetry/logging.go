package telemetry

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds a slog.Logger writing to w in the requested format
// ("text" or "json") at the requested level ("debug", "info", "warn",
// "error"). This is the single place the daemons' -log-format/-log-level
// flags resolve, so their meaning cannot drift between binaries.
func NewLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "", "info":
		lvl = slog.LevelInfo
	case "debug":
		lvl = slog.LevelDebug
	case "warn", "warning":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("telemetry: unknown log level %q (want debug, info, warn, or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("telemetry: unknown log format %q (want text or json)", format)
	}
}

// NopLogger returns a logger that discards everything — the default for
// libraries whose caller did not wire logging up.
func NopLogger() *slog.Logger { return slog.New(slog.DiscardHandler) }
