package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"time"
)

// TraceWriter streams Chrome trace-event JSON — the format chrome://tracing
// and Perfetto (ui.perfetto.dev) load directly. Events are written as they
// are emitted, one per line inside {"traceEvents": [...]}, so a scenario's
// trace needs no in-memory accumulation: a 10M-instance run streams to disk.
//
// Virtual times map onto the trace's microsecond timestamps, so one second
// of simulated time reads as one second in the viewer. The writer is not
// safe for concurrent use; the sim kernel's single timeline goroutine is
// the intended caller.
type TraceWriter struct {
	bw  *bufio.Writer
	n   int
	err error
}

// NewTraceWriter starts a trace stream on w. Call Close to terminate the
// JSON document.
func NewTraceWriter(w io.Writer) *TraceWriter {
	tw := &TraceWriter{bw: bufio.NewWriter(w)}
	_, tw.err = tw.bw.WriteString("{\"traceEvents\": [\n")
	return tw
}

// Events returns the number of events written so far.
func (tw *TraceWriter) Events() int { return tw.n }

// Close terminates the trace document and flushes. The writer is unusable
// afterwards.
func (tw *TraceWriter) Close() error {
	if tw.err == nil {
		_, tw.err = tw.bw.WriteString("\n]}\n")
	}
	if err := tw.bw.Flush(); tw.err == nil {
		tw.err = err
	}
	return tw.err
}

// raw writes one pre-rendered event object, handling commas and error
// latching.
func (tw *TraceWriter) raw(obj string) {
	if tw.err != nil {
		return
	}
	if tw.n > 0 {
		if _, tw.err = tw.bw.WriteString(",\n"); tw.err != nil {
			return
		}
	}
	_, tw.err = tw.bw.WriteString(obj)
	tw.n++
}

// micros renders a virtual time as the trace's microsecond timestamp.
func micros(t time.Duration) string {
	return strconv.FormatFloat(float64(t)/float64(time.Microsecond), 'f', 3, 64)
}

func quoted(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}

// Complete writes an "X" (complete) event: a span [start, start+dur) on
// the (pid, tid) track. args, when non-empty, must be a JSON object.
func (tw *TraceWriter) Complete(name, cat string, pid, tid int, start, dur time.Duration, args string) {
	tw.raw(fmt.Sprintf(`{"ph":"X","name":%s,"cat":%s,"pid":%d,"tid":%d,"ts":%s,"dur":%s%s}`,
		quoted(name), quoted(cat), pid, tid, micros(start), micros(dur), argsField(args)))
}

// AsyncBegin / AsyncEnd write "b"/"e" async events: spans keyed by
// (cat, id) that may overlap freely — one per placed instance, so
// colocated instances render side by side instead of nesting.
func (tw *TraceWriter) AsyncBegin(name, cat string, pid, id int, t time.Duration, args string) {
	tw.raw(fmt.Sprintf(`{"ph":"b","name":%s,"cat":%s,"pid":%d,"tid":0,"id":%d,"ts":%s%s}`,
		quoted(name), quoted(cat), pid, id, micros(t), argsField(args)))
}

func (tw *TraceWriter) AsyncEnd(name, cat string, pid, id int, t time.Duration, args string) {
	tw.raw(fmt.Sprintf(`{"ph":"e","name":%s,"cat":%s,"pid":%d,"tid":0,"id":%d,"ts":%s%s}`,
		quoted(name), quoted(cat), pid, id, micros(t), argsField(args)))
}

// Instant writes an "i" event — a zero-duration marker. scope is "g"
// (global), "p" (process) or "t" (thread).
func (tw *TraceWriter) Instant(name, cat string, pid, tid int, t time.Duration, scope string, args string) {
	tw.raw(fmt.Sprintf(`{"ph":"i","name":%s,"cat":%s,"pid":%d,"tid":%d,"ts":%s,"s":%s%s}`,
		quoted(name), quoted(cat), pid, tid, micros(t), quoted(scope), argsField(args)))
}

// Counter writes a "C" event: the named series' values at t, rendered as
// stacked area charts by the viewers. names and values run in parallel so
// series order (and thus the byte stream) is deterministic.
func (tw *TraceWriter) Counter(name string, pid int, t time.Duration, names []string, values []float64) {
	if len(names) != len(values) {
		tw.err = fmt.Errorf("telemetry: counter %q: %d names, %d values", name, len(names), len(values))
		return
	}
	args := ""
	for i, n := range names {
		if i > 0 {
			args += ","
		}
		args += quoted(n) + ":" + strconv.FormatFloat(values[i], 'g', -1, 64)
	}
	tw.raw(fmt.Sprintf(`{"ph":"C","name":%s,"pid":%d,"tid":0,"ts":%s,"args":{%s}}`,
		quoted(name), pid, micros(t), args))
}

// MetaProcessName labels a pid in the viewer's track list.
func (tw *TraceWriter) MetaProcessName(pid int, name string) {
	tw.raw(fmt.Sprintf(`{"ph":"M","name":"process_name","pid":%d,"tid":0,"ts":0,"args":{"name":%s}}`,
		pid, quoted(name)))
}

// MetaThreadName labels a (pid, tid) track.
func (tw *TraceWriter) MetaThreadName(pid, tid int, name string) {
	tw.raw(fmt.Sprintf(`{"ph":"M","name":"thread_name","pid":%d,"tid":%d,"ts":0,"args":{"name":%s}}`,
		pid, tid, quoted(name)))
}

func argsField(args string) string {
	if args == "" {
		return ""
	}
	return `,"args":` + args
}

// TraceSink adapts a TraceWriter into the sim kernel's MetricsSink: Observe
// forwards each (virtual time, event) pair to Map, which renders whatever
// trace events it decides onto W. The mapping lives with the emitter (the
// scenario scheduler knows its own event types); the sink and writer stay
// model-agnostic, so any future kernel user traces through the same layer.
type TraceSink struct {
	W   *TraceWriter
	Map func(t time.Duration, ev any, w *TraceWriter)
}

// Observe implements the sim kernel's MetricsSink interface.
func (s *TraceSink) Observe(t time.Duration, ev any) {
	if s.Map != nil {
		s.Map(t, ev, s.W)
	}
}

// TraceSummary reports what a parsed trace contained.
type TraceSummary struct {
	Events int
	Phases map[string]int // count per ph
}

// ParseTrace validates Chrome trace-event JSON: the document must be either
// a JSON array of events or an object with a traceEvents array, and every
// event must carry a known "ph" phase, a name where the phase requires one,
// and a numeric "ts" for timeline phases. CI's synapse-sim smoke and
// cmd/obslint gate trace files through this before anyone loads them into
// Perfetto.
func ParseTrace(data []byte) (*TraceSummary, error) {
	var events []map[string]json.RawMessage
	if err := json.Unmarshal(data, &events); err != nil {
		var doc struct {
			TraceEvents []map[string]json.RawMessage `json:"traceEvents"`
		}
		if err2 := json.Unmarshal(data, &doc); err2 != nil {
			return nil, fmt.Errorf("not trace-event JSON (neither array nor {\"traceEvents\": ...}): %w", err2)
		}
		if doc.TraceEvents == nil {
			return nil, fmt.Errorf("document has no traceEvents array")
		}
		events = doc.TraceEvents
	}
	if len(events) == 0 {
		return nil, fmt.Errorf("trace contains no events")
	}
	sum := &TraceSummary{Events: len(events), Phases: map[string]int{}}
	for i, ev := range events {
		var ph string
		if raw, ok := ev["ph"]; !ok || json.Unmarshal(raw, &ph) != nil || ph == "" {
			return nil, fmt.Errorf("event %d: missing or malformed ph", i)
		}
		switch ph {
		case "B", "E", "X", "i", "I", "C", "b", "e", "n", "s", "t", "f", "M", "P", "N", "O", "D":
		default:
			return nil, fmt.Errorf("event %d: unknown phase %q", i, ph)
		}
		sum.Phases[ph]++
		if ph != "M" {
			var ts float64
			if raw, ok := ev["ts"]; !ok || json.Unmarshal(raw, &ts) != nil {
				return nil, fmt.Errorf("event %d (ph %q): missing or non-numeric ts", i, ph)
			}
		}
		if ph != "E" && ph != "e" {
			var name string
			if raw, ok := ev["name"]; !ok || json.Unmarshal(raw, &name) != nil || name == "" {
				return nil, fmt.Errorf("event %d (ph %q): missing name", i, ph)
			}
		}
	}
	return sum, nil
}
