package telemetry

import (
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
)

// Build identifies the running binary: module version, Go toolchain, and
// (when built from a checkout) the VCS revision. It rides in healthz
// payloads and behind every command's -version flag.
type Build struct {
	Version   string `json:"version"`
	GoVersion string `json:"go_version"`
	Revision  string `json:"vcs_revision,omitempty"`
	Dirty     bool   `json:"vcs_dirty,omitempty"`
}

// BuildInfo reads the binary's embedded build metadata. Outside a module
// build (go run of a loose file, tests without build info) the fields
// degrade to "(devel)" and the runtime's Go version.
func BuildInfo() Build {
	b := Build{Version: "(devel)", GoVersion: runtime.Version()}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return b
	}
	if v := info.Main.Version; v != "" {
		b.Version = v
	}
	if info.GoVersion != "" {
		b.GoVersion = info.GoVersion
	}
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			b.Revision = s.Value
		case "vcs.modified":
			b.Dirty = s.Value == "true"
		}
	}
	return b
}

// String renders the build for a -version flag: "name version (rev, go)".
func (b Build) String() string {
	rev := b.Revision
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if rev == "" {
		rev = "unknown rev"
	} else if b.Dirty {
		rev += "-dirty"
	}
	return fmt.Sprintf("%s (%s, %s)", b.Version, rev, b.GoVersion)
}

// PrintVersion writes the canonical -version line for a command.
func PrintVersion(w io.Writer, cmd string) {
	fmt.Fprintf(w, "%s %s\n", cmd, BuildInfo())
}
