package telemetry

import (
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestExpositionGolden pins the exact text a small registry renders:
// families sorted by name, series sorted by label values, histograms
// expanded into cumulative buckets with an +Inf tail. The exposition
// format is a wire contract (Prometheus scrapes it), so it is golden-
// pinned rather than substring-checked.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	req := r.CounterVec("http_requests_total", "Requests served.", "route", "code")
	req.With("/v1/profiles", "200").Add(3)
	req.With("/v1/keys", "200").Inc()
	req.With("/v1/profiles", "404").Inc()
	r.Gauge("inflight", "Currently executing requests.").Set(2)
	h := r.Histogram("latency_seconds", "Request latency.", []float64{0.01, 0.1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(5)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP http_requests_total Requests served.
# TYPE http_requests_total counter
http_requests_total{route="/v1/keys",code="200"} 1
http_requests_total{route="/v1/profiles",code="200"} 3
http_requests_total{route="/v1/profiles",code="404"} 1
# HELP inflight Currently executing requests.
# TYPE inflight gauge
inflight 2
# HELP latency_seconds Request latency.
# TYPE latency_seconds histogram
latency_seconds_bucket{le="0.01"} 1
latency_seconds_bucket{le="0.1"} 2
latency_seconds_bucket{le="+Inf"} 3
latency_seconds_sum 5.055
latency_seconds_count 3
`
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	// And the golden output must satisfy our own validator.
	exp, err := ParseExposition([]byte(sb.String()))
	if err != nil {
		t.Fatalf("golden exposition fails validation: %v", err)
	}
	if exp.Series != 9 {
		t.Errorf("parsed %d series, want 9", exp.Series)
	}
	for _, name := range []string{"http_requests_total", "inflight", "latency_seconds"} {
		if !exp.Has(name) {
			t.Errorf("exposition missing family %s", name)
		}
	}
}

func TestExpositionEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("weird_total", "with \"quotes\" and\nnewline", "k").With("a\"b\\c\nd").Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `k="a\"b\\c\nd"`) {
		t.Errorf("label not escaped: %s", out)
	}
	if _, err := ParseExposition([]byte(out)); err != nil {
		t.Errorf("escaped exposition fails validation: %v", err)
	}
}

func TestHandlerServesExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("served_total", "").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	if _, err := ParseExposition(body); err != nil {
		t.Errorf("handler output invalid: %v\n%s", err, body)
	}
}

// TestParseExpositionRejects: the validator catches the malformations CI
// cares about — it must fail loudly on a broken scrape, not rubber-stamp.
func TestParseExpositionRejects(t *testing.T) {
	for name, in := range map[string]string{
		"empty":             "",
		"comment only":      "# HELP x y\n# TYPE x counter\n",
		"bad name":          "9metric 1\n",
		"bad value":         "metric abc\n",
		"unterminated":      `metric{a="b 1` + "\n",
		"malformed label":   `metric{a=b} 1` + "\n",
		"bad type":          "# TYPE x enum\nx 1\n",
		"malformed comment": "# NOPE\nx 1\n",
		"bad timestamp":     "metric 1 notatime\n",
	} {
		if _, err := ParseExposition([]byte(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}

	// Valid corner cases must pass: +Inf values, timestamps, empty labels.
	ok := "metric{} 1\nother +Inf 1234567890\nnan_metric NaN\n"
	if _, err := ParseExposition([]byte(ok)); err != nil {
		t.Errorf("valid corner cases rejected: %v", err)
	}
}
