package render

import (
	"context"
	"strings"
	"testing"
	"time"

	"synapse/internal/app"
	"synapse/internal/atoms"
	"synapse/internal/clock"
	"synapse/internal/emulator"
	"synapse/internal/machine"
	"synapse/internal/proc"
	"synapse/internal/profile"
	"synapse/internal/watcher"
)

func testProfile(t *testing.T) *profile.Profile {
	t.Helper()
	m := machine.MustGet(machine.Thinkie)
	sp, err := proc.Execute(app.MDSim(100_000), m, proc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pr := &watcher.Profiler{Rate: 2, Clock: clock.NewAutoSim(time.Unix(0, 0)), Machine: m}
	p, err := pr.Run(context.Background(), watcher.NewSimTarget(sp))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSeriesRendering(t *testing.T) {
	p := testProfile(t)
	out := Series(p, profile.MetricCPUCycles, 40)
	if !strings.Contains(out, "cpu.cycles") {
		t.Errorf("series missing metric name: %q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("series has %d lines", len(lines))
	}
	// The chart line should be exactly `width` runes.
	if n := len([]rune(lines[1])); n != 40 {
		t.Errorf("chart width = %d, want 40", n)
	}
}

func TestSeriesEmptyAndDegenerate(t *testing.T) {
	p := profile.New("x", nil)
	if out := Series(p, profile.MetricCPUCycles, 20); !strings.Contains(out, "no samples") {
		t.Errorf("empty profile: %q", out)
	}
	// A metric never sampled renders flat, not panics.
	p2 := testProfile(t)
	out := Series(p2, "custom.never", 20)
	if out == "" {
		t.Error("unknown metric should still render")
	}
	// Tiny width clamps.
	_ = Series(p2, profile.MetricCPUCycles, 1)
}

func TestProfileRendering(t *testing.T) {
	p := testProfile(t)
	out := Profile(p, 40)
	for _, want := range []string{"profile \"mdsim\"", "totals:", "cpu.cycles", "io.write_bytes"} {
		if !strings.Contains(out, want) {
			t.Errorf("Profile render missing %q", want)
		}
	}
}

func TestGanttRendering(t *testing.T) {
	p := testProfile(t)
	rep, err := emulator.Emulate(context.Background(), p, emulator.Options{
		Atoms: atoms.Config{Machine: machine.MustGet(machine.Thinkie)},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := Gantt(rep, 60)
	for _, want := range []string{"compute", "barrier", "#", "|"} {
		if !strings.Contains(out, want) {
			t.Errorf("Gantt missing %q:\n%s", want, out)
		}
	}
}

func TestGanttEmpty(t *testing.T) {
	rep := &emulator.Report{}
	if out := Gantt(rep, 40); !strings.Contains(out, "empty trace") {
		t.Errorf("empty trace render: %q", out)
	}
}
