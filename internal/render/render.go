// Package render draws profiles and emulation traces as ASCII/Unicode
// charts for terminal inspection: per-metric sample series (what the
// watchers saw over time) and replay Gantt timelines (which atom bounded
// each sample — the pictures of paper Figs 2 and 3).
package render

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"synapse/internal/emulator"
	"synapse/internal/profile"
)

// bars are the vertical resolution of series charts.
var bars = []rune("▁▂▃▄▅▆▇█")

// Series renders one metric's sampled values as a sparkline with axis
// labels. Samples are aggregated into at most width buckets (counters sum,
// gauges take the maximum).
func Series(p *profile.Profile, metric string, width int) string {
	if width < 8 {
		width = 8
	}
	if len(p.Samples) == 0 {
		return fmt.Sprintf("%s: no samples\n", metric)
	}
	kind := profile.KindOf(metric)
	dur := p.Duration
	if dur <= 0 {
		dur = p.Samples[len(p.Samples)-1].T
	}
	if dur <= 0 {
		dur = time.Second
	}
	buckets := make([]float64, width)
	for _, s := range p.Samples {
		idx := int(float64(s.T) / float64(dur) * float64(width))
		if idx >= width {
			idx = width - 1
		}
		if idx < 0 {
			idx = 0
		}
		v := s.Get(metric)
		if kind == profile.Counter {
			buckets[idx] += v
		} else if v > buckets[idx] {
			buckets[idx] = v
		}
	}
	var max float64
	for _, v := range buckets {
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s  (max %.4g per bucket, Tx %.2fs)\n", metric, max, dur.Seconds())
	for _, v := range buckets {
		if max <= 0 {
			b.WriteRune(bars[0])
			continue
		}
		idx := int(v / max * float64(len(bars)-1))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(bars) {
			idx = len(bars) - 1
		}
		b.WriteRune(bars[idx])
	}
	b.WriteByte('\n')
	return b.String()
}

// Profile renders the key sampled series plus the totals of a profile.
func Profile(p *profile.Profile, width int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "profile %q tags=%v machine=%s rate=%gHz Tx=%.3fs samples=%d\n",
		p.Command, p.Tags, p.Machine, p.SampleRate, p.Duration.Seconds(), len(p.Samples))
	for _, m := range []string{
		profile.MetricCPUCycles,
		profile.MetricIOReadBytes,
		profile.MetricIOWriteBytes,
		profile.MetricMemRSS,
	} {
		if hasMetric(p, m) {
			b.WriteString(Series(p, m, width))
		}
	}
	b.WriteString("totals:\n")
	var keys []string
	for m := range p.Totals {
		keys = append(keys, m)
	}
	sort.Strings(keys)
	for _, m := range keys {
		fmt.Fprintf(&b, "  %-24s %.6g\n", m, p.Totals[m])
	}
	return b.String()
}

func hasMetric(p *profile.Profile, metric string) bool {
	for _, s := range p.Samples {
		if _, ok := s.Values[metric]; ok {
			return true
		}
	}
	return false
}

// Gantt renders an emulation trace as one row per atom: within each sample
// all atoms run concurrently; the sample ends at the barrier (the '|'
// marks). Time is compressed into width columns.
func Gantt(rep *emulator.Report, width int) string {
	if width < 16 {
		width = 16
	}
	if len(rep.Trace) == 0 {
		return "empty trace\n"
	}
	total := rep.Tx - rep.Startup
	if total <= 0 {
		return "no replay time\n"
	}
	col := func(t time.Duration) int {
		c := int(float64(t) / float64(total) * float64(width))
		if c >= width {
			c = width - 1
		}
		if c < 0 {
			c = 0
		}
		return c
	}

	atoms := []string{"compute", "storage", "memory", "network"}
	rows := map[string][]rune{}
	for _, a := range atoms {
		rows[a] = []rune(strings.Repeat(" ", width))
	}
	barriers := []rune(strings.Repeat(" ", width))
	for _, st := range rep.Trace {
		for _, sp := range st.Spans {
			row, ok := rows[sp.Atom]
			if !ok {
				continue
			}
			from, to := col(st.Start), col(st.Start+sp.Dur)
			for c := from; c <= to && c < width; c++ {
				row[c] = '#'
			}
		}
		barriers[col(st.Start+st.Dur)] = '|'
	}

	var b strings.Builder
	fmt.Fprintf(&b, "emulation on %s: Tx=%.3fs (startup %.2fs) samples=%d\n",
		rep.Machine, rep.Tx.Seconds(), rep.Startup.Seconds(), rep.Samples)
	used := 0
	for _, a := range atoms {
		if rep.BusyTime(a) <= 0 {
			continue
		}
		used++
		fmt.Fprintf(&b, "%-8s %s\n", a, string(rows[a]))
	}
	if used == 0 {
		b.WriteString("(no atom activity)\n")
	}
	fmt.Fprintf(&b, "%-8s %s\n", "barrier", string(barriers))
	return b.String()
}
