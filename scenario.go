package synapse

import (
	"context"

	"synapse/internal/cluster"
	"synapse/internal/scenario"
)

// Scenario is a declarative workload mix: stored profiles plus per-workload
// arrival processes, concurrency limits and emulation options, scheduled
// together on a virtual timeline (see docs/scenarios.md for the spec
// reference).
type Scenario = scenario.Spec

// ScenarioWorkload is one component of a Scenario.
type ScenarioWorkload = scenario.Workload

// ScenarioProfileRef names a stored profile inside a ScenarioWorkload.
type ScenarioProfileRef = scenario.ProfileRef

// ScenarioArrival configures a workload's arrival process ("closed",
// "poisson", "constant", "burst").
type ScenarioArrival = scenario.Arrival

// ScenarioEmulation carries a workload's per-instance replay options.
type ScenarioEmulation = scenario.Emulation

// ScenarioDuration is the spec's duration type: JSON duration strings
// ("90s") or bare numbers of seconds.
type ScenarioDuration = scenario.Duration

// ScenarioCluster is a scenario's optional finite machine pool: nodes drawn
// from the machine catalog or inline JSON models, a placement policy
// ("first_fit", "best_fit", "least_loaded", "random"), and a contention
// model that slows colocated instances. See docs/scenarios.md.
type ScenarioCluster = cluster.Spec

// ScenarioClusterNode describes one (kind of) node in a ScenarioCluster.
type ScenarioClusterNode = cluster.NodeSpec

// ScenarioResources is a workload instance's demand on a cluster node.
type ScenarioResources = scenario.Resources

// ScenarioEvents is a scenario's optional dynamic-cluster block: a
// versioned timeline of node failures ("node_down"), recoveries
// ("node_up"), drains ("node_drain") and additions ("add_nodes") that
// mutate the pool mid-run — displaced instances are killed and
// deterministically retried — plus an optional queue-threshold autoscale
// rule. See docs/scenarios.md.
type ScenarioEvents = scenario.Events

// ScenarioEvent is one scheduled pool mutation in a ScenarioEvents
// timeline.
type ScenarioEvent = scenario.ClusterEvent

// ScenarioAutoscale grows the pool when the queue backs up and shrinks it
// when the queue empties, deterministically on the virtual timeline.
type ScenarioAutoscale = scenario.Autoscale

// ScenarioTimelineSpec enables the report's bucketed time-series view
// (Report.Timeline) with a fixed bucket width.
type ScenarioTimelineSpec = scenario.TimelineSpec

// ScenarioTimeline is the bucketed time-series a timeline-enabled run
// reports: per-bucket throughput, queue depth and per-node occupancy.
type ScenarioTimeline = scenario.Timeline

// ScenarioTimelineBucket is one fixed-width slice of a ScenarioTimeline.
type ScenarioTimelineBucket = scenario.TimelineBucket

// ScenarioClusterReport summarizes placement decisions and per-node
// utilization for a clustered scenario run.
type ScenarioClusterReport = scenario.ClusterReport

// ScenarioNodeReport is one node's slice of the placement outcome.
type ScenarioNodeReport = scenario.NodeReport

// ParseCluster decodes and validates a standalone cluster description
// (strict JSON), e.g. for synapse-sim's -cluster flag.
func ParseCluster(data []byte) (*ScenarioCluster, error) { return cluster.ParseSpec(data) }

// ScenarioReport is the aggregate outcome of RunScenario: makespan, per-
// workload throughput, latency percentiles (sojourn, queue wait, service)
// and busy-time breakdowns. Reports are byte-identical for a fixed spec and
// seed.
type ScenarioReport = scenario.Report

// ParseScenario decodes and validates a versioned JSON scenario spec.
func ParseScenario(data []byte) (*Scenario, error) { return scenario.Parse(data) }

// LoadScenario reads, decodes and validates a scenario spec file.
func LoadScenario(path string) (*Scenario, error) { return scenario.Load(path) }

// WithScenarioWorkers bounds RunScenario's parallel emulation fan-out
// (0 uses all cores, 1 forces serial). The report is identical at any
// worker count; only wall-clock speed changes.
func WithScenarioWorkers(n int) Option {
	return func(o *options) { o.scenWorkers = n }
}

// RunScenario executes a workload mix: every workload's profile resolves
// through the configured store (WithStore, including NewRemoteStore
// clients), instances emulate on the batched replay engine across all
// cores, and the discrete-event scheduler aggregates the virtual-time
// outcome into a deterministic report.
func RunScenario(ctx context.Context, spec *Scenario, opts ...Option) (*ScenarioReport, error) {
	o := buildOptions(opts)
	return scenario.Run(ctx, spec, o.st, scenario.RunOptions{Workers: o.scenWorkers})
}
