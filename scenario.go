package synapse

import (
	"context"

	"synapse/internal/scenario"
)

// Scenario is a declarative workload mix: stored profiles plus per-workload
// arrival processes, concurrency limits and emulation options, scheduled
// together on a virtual timeline (see docs/scenarios.md for the spec
// reference).
type Scenario = scenario.Spec

// ScenarioWorkload is one component of a Scenario.
type ScenarioWorkload = scenario.Workload

// ScenarioProfileRef names a stored profile inside a ScenarioWorkload.
type ScenarioProfileRef = scenario.ProfileRef

// ScenarioArrival configures a workload's arrival process ("closed",
// "poisson", "constant", "burst").
type ScenarioArrival = scenario.Arrival

// ScenarioEmulation carries a workload's per-instance replay options.
type ScenarioEmulation = scenario.Emulation

// ScenarioDuration is the spec's duration type: JSON duration strings
// ("90s") or bare numbers of seconds.
type ScenarioDuration = scenario.Duration

// ScenarioReport is the aggregate outcome of RunScenario: makespan, per-
// workload throughput, latency percentiles (sojourn, queue wait, service)
// and busy-time breakdowns. Reports are byte-identical for a fixed spec and
// seed.
type ScenarioReport = scenario.Report

// ParseScenario decodes and validates a versioned JSON scenario spec.
func ParseScenario(data []byte) (*Scenario, error) { return scenario.Parse(data) }

// LoadScenario reads, decodes and validates a scenario spec file.
func LoadScenario(path string) (*Scenario, error) { return scenario.Load(path) }

// WithScenarioWorkers bounds RunScenario's parallel emulation fan-out
// (0 uses all cores, 1 forces serial). The report is identical at any
// worker count; only wall-clock speed changes.
func WithScenarioWorkers(n int) Option {
	return func(o *options) { o.scenWorkers = n }
}

// RunScenario executes a workload mix: every workload's profile resolves
// through the configured store (WithStore, including NewRemoteStore
// clients), instances emulate on the batched replay engine across all
// cores, and the discrete-event scheduler aggregates the virtual-time
// outcome into a deterministic report.
func RunScenario(ctx context.Context, spec *Scenario, opts ...Option) (*ScenarioReport, error) {
	o := buildOptions(opts)
	return scenario.Run(ctx, spec, o.st, scenario.RunOptions{Workers: o.scenWorkers})
}
