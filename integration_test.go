package synapse

// Integration tests: cross-module flows through the public API, with
// failure injection. These complement the per-package unit tests by
// exercising the same paths a downstream user of the library would.

import (
	"context"
	"fmt"
	"math"
	"testing"
	"time"

	"synapse/internal/machine"
	"synapse/internal/profile"
	"synapse/internal/store"
)

// TestIntegrationFullPipeline drives the complete life cycle on a disk
// store: repeated profiling at several sizes, statistics, cross-machine
// emulation, store reopen.
func TestIntegrationFullPipeline(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	st, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}

	sizes := []int{50_000, 200_000}
	for _, steps := range sizes {
		tags := map[string]string{"steps": fmt.Sprint(steps)}
		for seed := uint64(0); seed < 3; seed++ {
			if _, err := Profile(ctx, "mdsim", tags,
				OnMachine(Thinkie), AtRate(2), WithStore(st),
				WithSeed(seed), WithJitter()); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Statistics across repetitions: spread is small but non-zero.
	set, err := Profiles("mdsim", map[string]string{"steps": "200000"}, WithStore(st))
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 3 {
		t.Fatalf("stored %d profiles, want 3", len(set))
	}
	tx := set.TxSummary()
	if tx.StdDev <= 0 {
		t.Error("jittered repetitions should vary")
	}
	if tx.StdDev/tx.Mean > 0.1 {
		t.Errorf("repetition spread %.1f%% too large", 100*tx.StdDev/tx.Mean)
	}

	// Reopen the store from disk and emulate on every catalog machine.
	st2, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	var txs []float64
	for _, mn := range Machines() {
		rep, err := Emulate(ctx, "mdsim", map[string]string{"steps": "200000"},
			OnMachine(mn), WithStore(st2))
		if err != nil {
			t.Fatalf("emulate on %s: %v", mn, err)
		}
		if rep.Samples == 0 {
			t.Errorf("%s: nothing replayed", mn)
		}
		txs = append(txs, rep.Tx.Seconds())
	}
	// Different machines must produce different execution times.
	distinct := map[string]bool{}
	for _, v := range txs {
		distinct[fmt.Sprintf("%.3f", v)] = true
	}
	if len(distinct) < 4 {
		t.Errorf("emulations across 6 machines collapsed to %d distinct Tx", len(distinct))
	}
}

// TestIntegrationResampleRoundTrip resamples a stored profile and verifies
// consumption conservation through emulation.
func TestIntegrationResampleRoundTrip(t *testing.T) {
	ctx := context.Background()
	prev := SetDefaultStore(NewMemStore())
	defer SetDefaultStore(prev)
	tags := map[string]string{"steps": "500000"}
	p, err := Profile(ctx, "mdsim", tags, OnMachine(Thinkie), AtRate(5))
	if err != nil {
		t.Fatal(err)
	}
	coarse, err := profile.Resample(p, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	repFine, err := EmulateProfile(ctx, p, OnMachine(Thinkie))
	if err != nil {
		t.Fatal(err)
	}
	repCoarse, err := EmulateProfile(ctx, coarse, OnMachine(Thinkie))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(repFine.Consumed.WriteBytes-repCoarse.Consumed.WriteBytes) > 1 {
		t.Error("resampling changed replayed writes")
	}
	if repCoarse.Tx > repFine.Tx {
		t.Errorf("coarser replay (%v) should not exceed finer (%v)", repCoarse.Tx, repFine.Tx)
	}
}

// TestIntegrationStress verifies the full artificial-load path: CPU, disk
// and memory stress each slow their resource, compound when combined.
func TestIntegrationStress(t *testing.T) {
	ctx := context.Background()
	prev := SetDefaultStore(NewMemStore())
	defer SetDefaultStore(prev)
	tags := map[string]string{"steps": "300000"}
	if _, err := Profile(ctx, "mdsim", tags, OnMachine(Supermic), AtRate(1)); err != nil {
		t.Fatal(err)
	}
	base, err := Emulate(ctx, "mdsim", tags, OnMachine(Supermic))
	if err != nil {
		t.Fatal(err)
	}
	stressed, err := Emulate(ctx, "mdsim", tags, OnMachine(Supermic),
		WithStress(0.5, 0.5, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	ratio := stressed.Tx.Seconds() / base.Tx.Seconds()
	if ratio < 1.3 {
		t.Errorf("stressed emulation only %.2fx slower", ratio)
	}
	// Consumption is load independent.
	if stressed.Consumed.Cycles != base.Consumed.Cycles {
		t.Error("stress must not change cycles consumed")
	}
	// Invalid stress rejected.
	if _, err := Emulate(ctx, "mdsim", tags, OnMachine(Supermic), WithStress(1.5, 0, 0)); err == nil {
		t.Error("stress >= 1 should fail")
	}
}

// TestIntegrationDocumentOverflow injects a store that overflows and checks
// the truncation is surfaced on the stored profile.
func TestIntegrationDocumentOverflow(t *testing.T) {
	ctx := context.Background()
	tiny := store.NewMemWithLimit(16 << 10)
	tags := map[string]string{"steps": "2000000"}
	if _, err := Profile(ctx, "mdsim", tags, OnMachine(Thinkie), AtRate(10), WithStore(tiny)); err != nil {
		t.Fatal(err)
	}
	set, err := Profiles("mdsim", tags, WithStore(tiny))
	if err != nil {
		t.Fatal(err)
	}
	if set[0].Dropped == 0 {
		t.Error("expected dropped samples under the tiny limit")
	}
	// The truncated profile still emulates (partial replay).
	rep, err := Emulate(ctx, "mdsim", tags, OnMachine(Thinkie), WithStore(tiny))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Samples != len(set[0].Samples) {
		t.Errorf("replayed %d samples of %d stored", rep.Samples, len(set[0].Samples))
	}
}

// TestIntegrationProfiledBlocksEndToEnd checks the blktrace-inspired replay
// through the public API: a 4 KB-frame writer emulates slower with profiled
// blocks than with the 1 MB static default on a shared filesystem.
func TestIntegrationProfiledBlocksEndToEnd(t *testing.T) {
	ctx := context.Background()
	prev := SetDefaultStore(NewMemStore())
	defer SetDefaultStore(prev)
	tags := map[string]string{"steps": "2000000"} // ~10 MB of 4 KB frames
	if _, err := Profile(ctx, "mdsim", tags, OnMachine(Supermic), AtRate(1)); err != nil {
		t.Fatal(err)
	}
	static, err := Emulate(ctx, "mdsim", tags, OnMachine(Supermic), WithoutAtoms("memory"))
	if err != nil {
		t.Fatal(err)
	}
	profiled, err := Emulate(ctx, "mdsim", tags, OnMachine(Supermic),
		WithProfiledBlocks(), WithoutAtoms("memory"))
	if err != nil {
		t.Fatal(err)
	}
	// More, smaller operations were issued.
	if profiled.Consumed.WriteOps <= static.Consumed.WriteOps {
		t.Errorf("profiled blocks should issue more ops: %v vs %v",
			profiled.Consumed.WriteOps, static.Consumed.WriteOps)
	}
}

// TestIntegrationTimelineTrace checks the replay trace across a mixed
// workload: dominant atoms vary and spans cover the whole run.
func TestIntegrationTimelineTrace(t *testing.T) {
	ctx := context.Background()
	prev := SetDefaultStore(NewMemStore())
	defer SetDefaultStore(prev)
	tags := map[string]string{"bytes": "1073741824", "block": "1048576", "fs": "lustre"}
	if _, err := Profile(ctx, "synapse-iobench", tags, OnMachine(Titan), AtRate(2)); err != nil {
		t.Fatal(err)
	}
	rep, err := Emulate(ctx, "synapse-iobench", tags, OnMachine(Titan), WithFilesystem("lustre"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Trace) != rep.Samples {
		t.Fatalf("trace covers %d of %d samples", len(rep.Trace), rep.Samples)
	}
	storageBusy := rep.BusyTime("storage")
	if storageBusy <= 0 {
		t.Error("storage atom never ran for an I/O workload")
	}
	var traceTotal time.Duration
	for _, st := range rep.Trace {
		traceTotal += st.Dur
	}
	if got := rep.Startup + traceTotal; got != rep.Tx {
		t.Errorf("trace durations (%v) + startup don't reassemble Tx (%v)", got, rep.Tx)
	}
}

// TestIntegrationCrossMachineMatrix sweeps profile-source × emulation-target
// across the catalog and verifies the portability invariant: replayed
// consumption is target independent, Tx is target dependent.
func TestIntegrationCrossMachineMatrix(t *testing.T) {
	ctx := context.Background()
	sources := []string{Thinkie, Comet}
	targets := []string{Stampede, Titan, Supermic}
	for _, src := range sources {
		st := NewMemStore()
		tags := map[string]string{"steps": "100000"}
		p, err := Profile(ctx, "mdsim", tags, OnMachine(src), AtRate(1), WithStore(st))
		if err != nil {
			t.Fatal(err)
		}
		var lastCycles float64
		for _, dst := range targets {
			rep, err := Emulate(ctx, "mdsim", tags, OnMachine(dst), WithStore(st),
				WithKernel("c"), WithoutAtoms("storage", "memory", "network"))
			if err != nil {
				t.Fatal(err)
			}
			m := machine.MustGet(dst)
			kp, _ := m.Kernel(machine.KernelC)
			want := p.Total(profile.MetricCPUCycles) * kp.CalibBias
			if rel := math.Abs(rep.Consumed.Cycles-want) / want; rel > 0.02 {
				t.Errorf("%s->%s: consumed cycles off by %.1f%%", src, dst, rel*100)
			}
			lastCycles = rep.Consumed.Cycles
		}
		_ = lastCycles
	}
}
