package synapse

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches markdown inline links and images: [text](target).
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestDocsLinks verifies every relative markdown link in README.md and
// docs/ resolves to a file in the repository, so the documentation cannot
// silently rot as files move. CI runs it in the docs job.
func TestDocsLinks(t *testing.T) {
	files := []string{"README.md"}
	entries, err := os.ReadDir("docs")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".md") {
			files = append(files, filepath.Join("docs", e.Name()))
		}
	}
	if len(files) < 2 {
		t.Fatalf("suspiciously few markdown files: %v", files)
	}

	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			switch {
			case strings.HasPrefix(target, "http://"),
				strings.HasPrefix(target, "https://"),
				strings.HasPrefix(target, "mailto:"):
				continue // external; not checked offline
			case strings.HasPrefix(target, "#"):
				continue // intra-document anchor
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			resolved := filepath.Join(filepath.Dir(f), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken link %q (resolved %s): %v", f, m[1], resolved, err)
			}
		}
	}
}
