// Workflow: the paper's §2.2 use case (AIMES middleware) plus the §7
// Application-Skeletons integration.
//
// AIMES distributes DAGs of scientific tasks across resources; Application
// Skeletons describe those DAGs while Synapse provides per-task resource
// behaviour. This example builds a two-round simulation/exchange workflow
// (the replica-exchange pattern of advanced sampling), runs it on two
// different machines, and compares makespans and critical paths — all from
// one set of profiles.
//
//	go run ./examples/workflow
package main

import (
	"context"
	"fmt"
	"log"

	"synapse"
)

func main() {
	ctx := context.Background()
	simTags := map[string]string{"steps": "300000"}
	exchangeTags := map[string]string{"steps": "50000"}

	// Replica-exchange DAG: 4 replicas simulate, an exchange step couples
	// them, then 4 more replicas continue.
	replicas := 4
	var tasks []synapse.WorkflowTask
	var round1 []string
	for i := 0; i < replicas; i++ {
		id := fmt.Sprintf("sim1-%d", i)
		tasks = append(tasks, synapse.WorkflowTask{
			ID: id, Command: "mdsim", Tags: simTags,
		})
		round1 = append(round1, id)
	}
	tasks = append(tasks, synapse.WorkflowTask{
		ID: "exchange", Command: "mdsim", Tags: exchangeTags, After: round1,
	})
	for i := 0; i < replicas; i++ {
		tasks = append(tasks, synapse.WorkflowTask{
			ID: fmt.Sprintf("sim2-%d", i), Command: "mdsim", Tags: simTags,
			After: []string{"exchange"},
		})
	}
	wf := &synapse.Workflow{Name: "replica-exchange", Tasks: tasks}

	for _, target := range []struct {
		machine string
		slots   int
	}{
		{synapse.Stampede, 4},
		{synapse.Archer, 4},
	} {
		res, err := synapse.RunWorkflow(ctx, wf, target.machine, target.slots, synapse.Thinkie)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s (%d slots): makespan %6.1fs, critical path %6.1fs\n",
			target.machine, target.slots,
			res.Makespan.Seconds(), res.CriticalPathLength(wf).Seconds())
		for _, tr := range res.Tasks {
			fmt.Printf("  %-8s %7.1fs -> %7.1fs\n", tr.ID, tr.Start.Seconds(), tr.End.Seconds())
		}
	}
	fmt.Println("\nthe same profiles drove both machines; only the emulation target changed —")
	fmt.Println("profile once, emulate anywhere, at workflow scale.")
}
