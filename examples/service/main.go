// Service: profile once, emulate anywhere — across processes.
//
// Boots a synapsed profile service in-process (in production it runs as its
// own daemon: `synapsed -addr :8181`), profiles MDSim through one remote
// client, then emulates from a second, completely independent client — the
// paper's shared-MongoDB workflow (§4), where many emulation hosts query one
// profile database.
//
//	go run ./examples/service
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"synapse"
	"synapse/internal/store"
	"synapse/internal/storesrv"
)

func main() {
	ctx := context.Background()

	// The daemon: a sharded backend behind the HTTP service. Stand-in for
	// `synapsed -addr :8181 -backend sharded` on a shared host.
	srv := storesrv.New(store.NewSharded(8), storesrv.Config{})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	url := "http://" + addr.String()
	fmt.Printf("synapsed serving on %s\n\n", url)

	tags := map[string]string{"steps": "1000000"}

	// Process A: the profiling host writes through its remote client.
	profiler := synapse.NewRemoteStore(url)
	p, err := synapse.Profile(ctx, "mdsim", tags,
		synapse.OnMachine(synapse.Thinkie),
		synapse.AtRate(2),
		synapse.WithStore(profiler),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("[profiler] stored %q (%d samples, Tx=%.2fs) in the service\n",
		p.Command, len(p.Samples), p.Duration.Seconds())
	profiler.Close()

	// Process B: an emulation host that shares nothing with process A but
	// the daemon's address.
	emulator := synapse.NewRemoteStore(url)
	defer emulator.Close()
	for _, target := range []string{synapse.Stampede, synapse.Archer, synapse.Titan} {
		rep, err := synapse.Emulate(ctx, "mdsim", tags,
			synapse.OnMachine(target),
			synapse.WithStore(emulator),
		)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("[emulator] %-9s Tx=%6.2fs ipc=%.2f\n", target, rep.Tx.Seconds(), rep.IPC())
	}

	// Hot reads hit the client cache: the daemon answers with a bodyless
	// 304 revalidation instead of re-sending the profile.
	start := time.Now()
	if _, err := emulator.Find("mdsim", tags); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncached re-read of the profile took %v\n", time.Since(start))

	shutdownCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("synapsed drained and stopped")
}
