// Middleware-pilot: the paper's §2.1 use case (RADICAL-Pilot).
//
// A pilot system's agent must be engineered against workloads of many
// concurrent, heterogeneous tasks — but real scientific applications are
// hard to deploy and impossible to tune continuously. This example uses
// Synapse proxy tasks instead: one profiled application is emulated under
// systematically varied configurations (serial, multi-threaded, multi-
// process, I/O-heavy), and a toy pilot agent schedules the resulting task
// bag onto a node, reporting the makespan per scheduling policy.
//
//	go run ./examples/middleware-pilot
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"time"

	"synapse"
)

// task is one emulated proxy task: a name and its measured duration on the
// target resource.
type task struct {
	name string
	dur  time.Duration
}

func main() {
	ctx := context.Background()
	tags := map[string]string{"steps": "500000"}

	// Profile the base application once on the laptop.
	if _, err := synapse.Profile(ctx, "mdsim", tags,
		synapse.OnMachine(synapse.Thinkie), synapse.AtRate(1)); err != nil {
		log.Fatal(err)
	}

	// Build a heterogeneous bag of proxy tasks for the pilot to run on a
	// Stampede node: the same science, tuned along dimensions the real
	// application does not expose.
	variants := []struct {
		name string
		opts []synapse.Option
	}{
		{"serial", nil},
		{"openmp-4", []synapse.Option{synapse.WithWorkers(4, synapse.OpenMP)}},
		{"openmp-8", []synapse.Option{synapse.WithWorkers(8, synapse.OpenMP)}},
		{"mpi-4", []synapse.Option{synapse.WithWorkers(4, synapse.MPI)}},
		{"io-4k", []synapse.Option{synapse.WithIOBlocks(4<<10, 4<<10)}},
		{"io-16M", []synapse.Option{synapse.WithIOBlocks(16<<20, 16<<20)}},
	}

	var bag []task
	for _, v := range variants {
		opts := append([]synapse.Option{synapse.OnMachine(synapse.Stampede)}, v.opts...)
		rep, err := synapse.Emulate(ctx, "mdsim", tags, opts...)
		if err != nil {
			log.Fatal(err)
		}
		bag = append(bag, task{v.name, rep.Tx})
		fmt.Printf("proxy task %-9s Tx = %6.2f s\n", v.name, rep.Tx.Seconds())
	}

	// A pilot agent with 4 execution slots: compare FIFO against
	// longest-task-first scheduling of the proxy bag.
	fmt.Println()
	for _, policy := range []string{"fifo", "longest-first"} {
		tasks := append([]task(nil), bag...)
		if policy == "longest-first" {
			sort.Slice(tasks, func(i, j int) bool { return tasks[i].dur > tasks[j].dur })
		}
		fmt.Printf("pilot agent, 4 slots, %-14s makespan = %6.2f s\n",
			policy+":", schedule(tasks, 4).Seconds())
	}
	fmt.Println("\ntuning the proxy tasks (threads, processes, I/O granularity) exercised the")
	fmt.Println("agent's scheduler across a heterogeneity range no single real application offers.")
}

// schedule assigns tasks to the first free slot and returns the makespan.
func schedule(tasks []task, slots int) time.Duration {
	free := make([]time.Duration, slots)
	for _, t := range tasks {
		// Earliest-free slot.
		min := 0
		for i := range free {
			if free[i] < free[min] {
				min = i
			}
		}
		free[min] += t.dur
	}
	var makespan time.Duration
	for _, f := range free {
		if f > makespan {
			makespan = f
		}
	}
	return makespan
}
