// Ensemble: the paper's §2.3 use case (Ensemble Toolkit).
//
// Ensemble-based methods run stages of coupled task bundles: a simulation
// stage fans out many MD tasks, a barrier collects them, an analysis stage
// consumes the results, and the cycle repeats (advanced sampling). This
// example builds that pipeline from Synapse proxy tasks: the simulation
// tasks emulate a profiled MD run, the analysis task emulates an I/O-heavy
// profile, and the driver varies task duration and count between stages —
// exactly the tunability the use case calls for.
//
//	go run ./examples/ensemble
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"synapse"
)

func main() {
	ctx := context.Background()

	// Profile the two task archetypes once.
	mdTags := map[string]string{"steps": "200000"}
	if _, err := synapse.Profile(ctx, "mdsim", mdTags,
		synapse.OnMachine(synapse.Thinkie), synapse.AtRate(1)); err != nil {
		log.Fatal(err)
	}
	anTags := map[string]string{"bytes": "536870912", "block": "1048576", "fs": "lustre"}
	if _, err := synapse.Profile(ctx, "synapse-iobench", anTags,
		synapse.OnMachine(synapse.Supermic), synapse.AtRate(1)); err != nil {
		log.Fatal(err)
	}

	// Three ensemble iterations on Supermic, shrinking the ensemble and
	// growing the per-task work each round (adaptive sampling schedule).
	node := 20 // Supermic cores
	total := time.Duration(0)
	for round, shape := range []struct {
		tasks   int
		workers int
	}{
		{tasks: 16, workers: 1},
		{tasks: 8, workers: 2},
		{tasks: 4, workers: 5},
	} {
		simRep, err := synapse.Emulate(ctx, "mdsim", mdTags,
			synapse.OnMachine(synapse.Supermic),
			synapse.WithWorkers(shape.workers, synapse.MPI), // MPI wins on Supermic (Fig 12)
		)
		if err != nil {
			log.Fatal(err)
		}
		// Stage makespan: tasks ride concurrently in waves limited by
		// node capacity.
		slots := node / shape.workers
		waves := (shape.tasks + slots - 1) / slots
		simStage := time.Duration(waves) * simRep.Tx

		anRep, err := synapse.Emulate(ctx, "synapse-iobench", anTags,
			synapse.OnMachine(synapse.Supermic),
			synapse.WithFilesystem("lustre"),
			synapse.WithIOBlocks(1<<20, 1<<20),
		)
		if err != nil {
			log.Fatal(err)
		}

		roundTime := simStage + anRep.Tx
		total += roundTime
		fmt.Printf("round %d: %2d sim tasks x %d ranks (%d waves of %d) = %6.1fs, analysis %5.1fs, round %6.1fs\n",
			round+1, shape.tasks, shape.workers, waves, slots,
			simStage.Seconds(), anRep.Tx.Seconds(), roundTime.Seconds())
	}
	fmt.Printf("ensemble makespan: %.1fs\n", total.Seconds())
	fmt.Println("\nvarying task duration, count and coupling between stages required no new")
	fmt.Println("science input — only retuning the proxy application (paper §2.3).")
}
