// Failover: the same mix on a static pool and on a pool that fails over.
//
// Profiles an MD simulation once, then runs one workload mix twice: first
// on a healthy two-node cluster, then on the same cluster with an events
// timeline — node "a" fails mid-run (its instances are killed and
// deterministically retried elsewhere), comes back later, and a
// queue-threshold autoscale rule backfills capacity while it is gone. A
// 1-second-bucket timeline records what the end-of-run aggregates average
// away: the throughput dip at the failure, the queue building, the
// autoscaled nodes draining it.
//
//	go run ./examples/failover
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"synapse"
)

func main() {
	ctx := context.Background()
	st := synapse.NewShardedStore(0)
	defer st.Close()

	mdTags := map[string]string{"steps": "50000"}
	if _, err := synapse.Profile(ctx, "mdsim", mdTags,
		synapse.OnMachine(synapse.Thinkie), synapse.AtRate(2), synapse.WithStore(st)); err != nil {
		log.Fatal(err)
	}

	contention := 0.3
	mkSpec := func(events *synapse.ScenarioEvents) *synapse.Scenario {
		return &synapse.Scenario{
			Version: 1,
			Name:    "failover",
			Seed:    42,
			Cluster: &synapse.ScenarioCluster{
				Policy:     "least_loaded",
				Contention: &contention,
				Nodes: []synapse.ScenarioClusterNode{
					{Name: "a", Machine: synapse.Stampede, Cores: 8},
					{Name: "b", Machine: synapse.Stampede, Cores: 8},
				},
			},
			Events:   events,
			Timeline: &synapse.ScenarioTimelineSpec{Bucket: synapse.ScenarioDuration(1e9)},
			Workloads: []synapse.ScenarioWorkload{{
				Name:      "md-stream",
				Profile:   synapse.ScenarioProfileRef{Command: "mdsim", Tags: mdTags},
				Arrival:   synapse.ScenarioArrival{Process: "poisson", Rate: 2, Count: 24},
				Resources: &synapse.ScenarioResources{Cores: 2},
				Emulation: synapse.ScenarioEmulation{Load: 0.05, LoadJitter: 0.04},
			}},
		}
	}

	faults := &synapse.ScenarioEvents{
		Version: 1,
		Timeline: []synapse.ScenarioEvent{
			// Node "a" dies three seconds in and is repaired at twelve.
			{At: synapse.ScenarioDuration(3e9), Kind: "node_down", Node: "a"},
			{At: synapse.ScenarioDuration(12e9), Kind: "node_up", Node: "a"},
		},
		Autoscale: &synapse.ScenarioAutoscale{
			CheckEvery: synapse.ScenarioDuration(2e9),
			QueueHigh:  4,
			Add:        synapse.ScenarioClusterNode{Name: "spare", Machine: synapse.Comet, Cores: 4},
			MaxNodes:   4,
		},
	}

	for _, run := range []struct {
		label  string
		events *synapse.ScenarioEvents
	}{
		{"healthy pool", nil},
		{"node a fails at 3s", faults},
	} {
		rep, err := synapse.RunScenario(ctx, mkSpec(run.events), synapse.WithStore(st))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-20s makespan %-14s p99 %-14s killed %-2d autoscaled %d\n",
			run.label, rep.Makespan, rep.Latency.P99, rep.Killed, rep.Cluster.Autoscaled)
		fmt.Printf("%-20s ", "")
		for _, b := range rep.Timeline.Buckets {
			fmt.Printf("%2d ", b.Completions)
		}
		fmt.Println("  completions per second")
	}

	// The full per-bucket series — throughput, queue depth, per-node
	// occupancy — renders as CSV for plotting.
	rep, err := synapse.RunScenario(ctx, mkSpec(faults), synapse.WithStore(st))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfailover timeline (CSV):")
	if err := rep.TimelineCSV(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nSame seed everywhere: rerun this and every number repeats.")
}
