// Scenario: a declarative workload mix over the profile store.
//
// Profiles two applications once (an MD simulation and an I/O-bound
// benchmark), then emulates a *mix*: four closed-loop MD clients competing
// with a Poisson stream of I/O jobs for six scheduler slots on Stampede.
// The scenario engine replays every instance through the batched emulator
// and reports latency percentiles, throughput and busy-time breakdowns —
// deterministic for the spec's seed, so changing one knob and diffing the
// report is a valid experiment.
//
//	go run ./examples/scenario
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"

	"synapse"
)

func main() {
	ctx := context.Background()
	st := synapse.NewShardedStore(0)
	defer st.Close()

	// Profile once: two applications, stored under their command + tags
	// identity. In a shared deployment this store would be a synapsed
	// daemon (synapse.NewRemoteStore) profiled by other hosts.
	mdTags := map[string]string{"steps": "50000"}
	if _, err := synapse.Profile(ctx, "mdsim", mdTags,
		synapse.OnMachine(synapse.Thinkie), synapse.AtRate(2), synapse.WithStore(st)); err != nil {
		log.Fatal(err)
	}
	ioTags := map[string]string{"bytes": "268435456", "block": "1048576", "fs": ""}
	if _, err := synapse.Profile(ctx, "synapse-iobench", ioTags,
		synapse.OnMachine(synapse.Thinkie), synapse.AtRate(2), synapse.WithStore(st)); err != nil {
		log.Fatal(err)
	}

	// The mix: closed-loop MD clients (each issues its next run as soon
	// as the previous completes) against an open Poisson stream of I/O
	// jobs, sharing six concurrency slots.
	spec := &synapse.Scenario{
		Version:       1,
		Name:          "md-vs-io",
		Seed:          42,
		MaxConcurrent: 6,
		Workloads: []synapse.ScenarioWorkload{
			{
				Name:    "md-clients",
				Profile: synapse.ScenarioProfileRef{Command: "mdsim", Tags: mdTags},
				Arrival: synapse.ScenarioArrival{Process: "closed", Clients: 4, Iterations: 5},
				Emulation: synapse.ScenarioEmulation{
					Machine: synapse.Stampede,
					// A lightly loaded, noisy node: per-instance CPU
					// load varies in 0.1 ± 0.08, spreading the
					// compute-bound latency percentiles.
					Load:       0.1,
					LoadJitter: 0.08,
				},
			},
			{
				Name:          "io-stream",
				Profile:       synapse.ScenarioProfileRef{Command: "synapse-iobench", Tags: ioTags},
				Arrival:       synapse.ScenarioArrival{Process: "poisson", Rate: 0.02, Count: 12},
				MaxConcurrent: 2,
				Emulation: synapse.ScenarioEmulation{
					Machine: synapse.Stampede,
				},
			},
		},
	}

	rep, err := synapse.RunScenario(ctx, spec, synapse.WithStore(st))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("scenario %q: %d emulations, makespan %s, %.3f emulations/s\n",
		rep.Scenario, rep.Emulations, rep.Makespan, rep.Throughput)
	for _, wr := range rep.Workloads {
		fmt.Printf("  %-12s on %-9s done=%2d  p50=%-10s p99=%-10s wait-max=%s\n",
			wr.Name, wr.Machine, wr.Emulations, wr.Latency.P50, wr.Latency.P99, wr.Wait.Max)
	}

	// The full report is plain JSON — diff it across spec variants.
	data, _ := json.MarshalIndent(rep, "", "  ")
	fmt.Printf("\nfull report (%d bytes of JSON):\n%s\n", len(data), data[:300])
	fmt.Println("...")
}
