// Placement: one workload mix, four placement policies, side by side.
//
// Profiles an MD simulation once, then replays the same mix — three
// closed-loop clients plus periodic bursts — on a finite two-node cluster
// under each placement policy. Colocation costs: an instance landing on a
// busy node replays with extra background load (the contention model), so
// packing policies trade queueing delay against contention slowdown. The
// reports are deterministic per (spec, seed), which makes the four runs a
// controlled experiment: only the policy differs.
//
//	go run ./examples/placement
package main

import (
	"context"
	"fmt"
	"log"

	"synapse"
)

func main() {
	ctx := context.Background()
	st := synapse.NewShardedStore(0)
	defer st.Close()

	mdTags := map[string]string{"steps": "50000"}
	if _, err := synapse.Profile(ctx, "mdsim", mdTags,
		synapse.OnMachine(synapse.Thinkie), synapse.AtRate(2), synapse.WithStore(st)); err != nil {
		log.Fatal(err)
	}

	contention := 0.5
	mkSpec := func(policy string) *synapse.Scenario {
		return &synapse.Scenario{
			Version: 1,
			Name:    "placement-" + policy,
			Seed:    42,
			Cluster: &synapse.ScenarioCluster{
				Policy:     policy,
				Contention: &contention,
				Nodes: []synapse.ScenarioClusterNode{
					// A big fast node and a small one: where the policy
					// puts the overflow decides the tail.
					{Name: "big", Machine: synapse.Stampede, Cores: 8},
					{Name: "small", Machine: synapse.Comet, Cores: 4},
				},
			},
			Workloads: []synapse.ScenarioWorkload{
				{
					Name:      "md-clients",
					Profile:   synapse.ScenarioProfileRef{Command: "mdsim", Tags: mdTags},
					Arrival:   synapse.ScenarioArrival{Process: "closed", Clients: 3, Iterations: 4},
					Resources: &synapse.ScenarioResources{Cores: 2},
				},
				{
					Name:      "md-bursts",
					Profile:   synapse.ScenarioProfileRef{Command: "mdsim", Tags: mdTags},
					Arrival:   synapse.ScenarioArrival{Process: "burst", Burst: 4, Every: synapse.ScenarioDuration(3e9), Bursts: 3},
					Resources: &synapse.ScenarioResources{Cores: 1},
					Emulation: synapse.ScenarioEmulation{Load: 0.05, LoadJitter: 0.04},
				},
			},
		}
	}

	fmt.Printf("%-14s %10s %10s %10s %9s %9s\n",
		"policy", "makespan", "p99", "wait-max", "util-big", "util-small")
	for _, policy := range []string{"first_fit", "best_fit", "least_loaded", "random"} {
		rep, err := synapse.RunScenario(ctx, mkSpec(policy), synapse.WithStore(st))
		if err != nil {
			log.Fatal(err)
		}
		var waitMax synapse.ScenarioDuration
		for _, wr := range rep.Workloads {
			if wr.Wait.Max > waitMax {
				waitMax = wr.Wait.Max
			}
		}
		fmt.Printf("%-14s %10s %10s %10s %8.1f%% %8.1f%%\n",
			policy, rep.Makespan, rep.Latency.P99, waitMax,
			100*rep.Cluster.Nodes[0].Utilization, 100*rep.Cluster.Nodes[1].Utilization)
	}
	fmt.Println("\nSame mix, same seed — only the placement policy differs.")
	fmt.Println("Diff the -out JSON reports for the full per-node story.")
}
