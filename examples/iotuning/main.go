// IO tuning: the paper's experiment E.5 as a library walk-through.
//
// Synapse cannot yet profile I/O granularity, but its emulation is tunable
// toward any filesystem and block size. This example sweeps both dimensions
// on Titan and prints the resulting bandwidth table — the data behind the
// paper's Fig 15 — then shows the blktrace-inspired mode that derives block
// sizes from profiled operation counts instead.
//
//	go run ./examples/iotuning
package main

import (
	"context"
	"fmt"
	"log"

	"synapse"
)

func main() {
	ctx := context.Background()
	const totalBytes = 256 << 20
	tags := map[string]string{"bytes": fmt.Sprint(totalBytes), "block": "4096", "fs": "lustre"}

	if _, err := synapse.Profile(ctx, "synapse-iobench", tags,
		synapse.OnMachine(synapse.Titan), synapse.AtRate(2)); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("I/O emulation of %d MB write+read on Titan:\n\n", totalBytes>>20)
	fmt.Printf("%-8s %-8s %12s\n", "fs", "block", "Tx (s)")
	for _, fs := range []string{"lustre", "local"} {
		for _, block := range []int64{4 << 10, 64 << 10, 1 << 20, 16 << 20} {
			rep, err := synapse.Emulate(ctx, "synapse-iobench", tags,
				synapse.OnMachine(synapse.Titan),
				synapse.WithFilesystem(fs),
				synapse.WithIOBlocks(block, block),
				synapse.WithStartupDelay(-1),
			)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-8s %-8s %12.2f\n", fs, blockLabel(block), rep.Tx.Seconds())
		}
	}

	// Future-work mode: honour the granularity the profiler observed
	// (the profile recorded 4 KB operations).
	rep, err := synapse.Emulate(ctx, "synapse-iobench", tags,
		synapse.OnMachine(synapse.Titan),
		synapse.WithProfiledBlocks(),
		synapse.WithStartupDelay(-1),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nprofiled-blocks mode replays the observed 4KB granularity: Tx = %.2f s\n", rep.Tx.Seconds())
	fmt.Println("(small blocks pay per-operation latency; shared filesystems punish writes ~10x)")
}

func blockLabel(b int64) string {
	if b >= 1<<20 {
		return fmt.Sprintf("%dMB", b>>20)
	}
	return fmt.Sprintf("%dKB", b>>10)
}
