// Quickstart: profile once, emulate anywhere.
//
// Profiles the Gromacs-like MDSim application on the paper's profiling host
// (Thinkie, an i7 laptop model) and replays the profile on two HPC machines,
// comparing the emulated execution time against what the application itself
// would take there — the core loop of the paper's experiments E.1/E.2.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"synapse"
)

func main() {
	ctx := context.Background()
	tags := map[string]string{"steps": "1000000"}

	// Profile one million MD steps on the laptop at 2 Hz.
	p, err := synapse.Profile(ctx, "mdsim", tags,
		synapse.OnMachine(synapse.Thinkie),
		synapse.AtRate(2),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profiled %q on %s:\n", p.Command, p.Machine)
	fmt.Printf("  Tx          %8.2f s\n", p.Duration.Seconds())
	fmt.Printf("  samples     %8d\n", len(p.Samples))
	fmt.Printf("  cycles      %8.3e\n", p.Total("cpu.cycles"))
	fmt.Printf("  flops       %8.3e\n", p.Total("cpu.flops"))
	fmt.Printf("  disk write  %8.0f B\n", p.Total("io.write_bytes"))
	fmt.Printf("  peak rss    %8.0f B\n", p.Total("mem.peak"))

	// Replay the same profile on three machines.
	for _, target := range []string{synapse.Thinkie, synapse.Stampede, synapse.Archer} {
		rep, err := synapse.Emulate(ctx, "mdsim", tags, synapse.OnMachine(target))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("emulated on %-9s Tx = %7.2f s  (cycles %.3e, ipc %.2f)\n",
			target+":", rep.Tx.Seconds(), rep.Consumed.Cycles, rep.IPC())
	}

	fmt.Println("\nthe profile is machine independent; the emulation Tx differs with each")
	fmt.Println("machine's clock, kernel calibration, and the application's own build quality")
	fmt.Println("(paper Fig 5/7: ≈-40% on Stampede, ≈+33% on Archer).")
}
